(* Tests for the convex-optimization layer: projections, projected
   gradient, the (CP) program and the dual certificate g(λ). *)

open Speedscale_util
open Speedscale_model
open Speedscale_solver

let check_float = Alcotest.(check (float 1e-6))
let p2 = Power.make 2.0
let p3 = Power.make 3.0

let mk_job ~id ~r ~d ~w ~v =
  Job.make ~id ~release:r ~deadline:d ~workload:w ~value:v

(* ------------------------------------------------------------------ *)
(* Projections                                                         *)
(* ------------------------------------------------------------------ *)

let test_simplex_examples () =
  let r = Proj.simplex ~total:1.0 [| 0.5; 0.5 |] in
  check_float "already feasible a" 0.5 r.(0);
  check_float "already feasible b" 0.5 r.(1);
  let r = Proj.simplex ~total:1.0 [| 2.0; 0.0 |] in
  check_float "corner a" 1.0 r.(0);
  check_float "corner b" 0.0 r.(1);
  let r = Proj.simplex ~total:1.0 [| 0.8; 0.6 |] in
  check_float "interior a" 0.6 r.(0);
  check_float "interior b" 0.4 r.(1)

let test_capped_simplex () =
  let r = Proj.capped_simplex ~total:1.0 [| 0.2; 0.3 |] in
  check_float "inside untouched a" 0.2 r.(0);
  check_float "inside untouched b" 0.3 r.(1);
  let r = Proj.capped_simplex ~total:1.0 [| -0.5; 0.3 |] in
  check_float "negative clipped" 0.0 r.(0);
  check_float "positive kept" 0.3 r.(1);
  let r = Proj.capped_simplex ~total:1.0 [| 0.8; 0.6 |] in
  check_float "sum capped" 1.0 (r.(0) +. r.(1))

let arb_vec =
  QCheck.(list_of_size Gen.(1 -- 8) (float_range (-3.0) 3.0))

let prop_simplex_feasible =
  QCheck.Test.make ~name:"simplex projection lands in the simplex" ~count:300
    arb_vec (fun xs ->
      let v = Array.of_list xs in
      let r = Proj.simplex ~total:1.0 v in
      Array.for_all (fun x -> x >= -1e-12) r
      && Feq.approx ~atol:1e-9 (Array.fold_left ( +. ) 0.0 r) 1.0)

let prop_simplex_is_projection =
  QCheck.Test.make ~name:"simplex projection minimizes distance" ~count:200
    QCheck.(pair arb_vec arb_vec)
    (fun (xs, ys) ->
      QCheck.assume (List.length xs = List.length ys);
      let v = Array.of_list xs in
      let r = Proj.simplex ~total:1.0 v in
      (* compare against an arbitrary feasible competitor *)
      let competitor =
        Proj.simplex ~total:1.0 (Array.of_list ys)
      in
      let dist a =
        Array.to_list (Array.mapi (fun i ai -> (ai -. v.(i)) ** 2.0) a)
        |> Ksum.sum
      in
      dist r <= dist competitor +. 1e-9)

let prop_capped_idempotent =
  QCheck.Test.make ~name:"capped projection is idempotent" ~count:300 arb_vec
    (fun xs ->
      let v = Array.of_list xs in
      let r = Proj.capped_simplex ~total:1.0 v in
      let r2 = Proj.capped_simplex ~total:1.0 r in
      Array.for_all2 (fun a b -> Feq.approx ~atol:1e-9 a b) r r2)

(* ------------------------------------------------------------------ *)
(* Projected gradient on a known problem                               *)
(* ------------------------------------------------------------------ *)

let test_pgd_quadratic () =
  (* min (x - 3)^2 + (y + 1)^2 over the simplex x + y = 1, x,y >= 0:
     optimum is the projection of (3, -1), i.e. (1, 0). *)
  let f x = ((x.(0) -. 3.0) ** 2.0) +. ((x.(1) +. 1.0) ** 2.0) in
  let grad x = [| 2.0 *. (x.(0) -. 3.0); 2.0 *. (x.(1) +. 1.0) |] in
  let r =
    Pgd.minimize ~f ~grad
      ~project:(Proj.simplex ~total:1.0)
      ~x0:[| 0.5; 0.5 |] ()
  in
  check_float "x" 1.0 r.x.(0);
  check_float "y" 0.0 r.x.(1)

let test_pgd_unconstrained_box () =
  let f x = (x.(0) -. 0.25) ** 2.0 in
  let grad x = [| 2.0 *. (x.(0) -. 0.25) |] in
  let r =
    Pgd.minimize ~f ~grad ~project:(Proj.box ~lo:0.0 ~hi:1.0) ~x0:[| 0.9 |] ()
  in
  check_float "box interior optimum" 0.25 r.x.(0)

(* ------------------------------------------------------------------ *)
(* CP: hand-checked optima                                             *)
(* ------------------------------------------------------------------ *)

let test_cp_single_job () =
  let inst =
    Instance.make ~power:p3 ~machines:1
      [ mk_job ~id:0 ~r:0.0 ~d:1.0 ~w:2.0 ~v:Float.infinity ]
  in
  let cp = Cp.make inst in
  let sol = Cp.solve cp Must_finish in
  check_float "energy 2^3" 8.0 sol.energy;
  check_float "completion" 1.0 sol.completion.(0)

let test_cp_two_intervals_alpha2 () =
  (* j0: [0,2] w=2; j1: [0,1] w=1; m=1, alpha=2.  Optimal splits j0 so both
     intervals run at speed 1.5; energy = 4.5 (see YDS hand computation). *)
  let inst =
    Instance.make ~power:p2 ~machines:1
      [
        mk_job ~id:0 ~r:0.0 ~d:2.0 ~w:2.0 ~v:Float.infinity;
        mk_job ~id:1 ~r:0.0 ~d:1.0 ~w:1.0 ~v:Float.infinity;
      ]
  in
  let sol = Cp.solve (Cp.make inst) Must_finish in
  Alcotest.(check (float 1e-3)) "energy 4.5" 4.5 sol.energy

let test_cp_profitable_rejects_cheap_job () =
  (* finishing costs 8 (speed 2 for 1s at alpha 3); value 1 -> reject *)
  let inst =
    Instance.make ~power:p3 ~machines:1
      [ mk_job ~id:0 ~r:0.0 ~d:1.0 ~w:2.0 ~v:1.0 ]
  in
  let sol = Cp.solve (Cp.make inst) Profitable in
  Alcotest.(check bool) "objective ~ best of finish or reject" true
    (sol.objective <= 1.0 +. 1e-3);
  (* the relaxation may partially process the job; the objective must be
     the true CP optimum: min over x of x^alpha * ... here inf is at
     intermediate x: min_x (2x)^3 + (1-x) on [0,1] -> x = 1/(2*sqrt 6) *)
  let x_star = 1.0 /. (2.0 *. sqrt 6.0) in
  let expected = ((2.0 *. x_star) ** 3.0) +. (1.0 -. x_star) in
  Alcotest.(check (float 1e-3)) "matches interior optimum" expected
    sol.objective

let test_cp_profitable_finishes_valuable_job () =
  let inst =
    Instance.make ~power:p3 ~machines:1
      [ mk_job ~id:0 ~r:0.0 ~d:1.0 ~w:2.0 ~v:100.0 ]
  in
  let sol = Cp.solve (Cp.make inst) Profitable in
  Alcotest.(check (float 1e-3)) "energy 8, no loss" 8.0 sol.objective;
  Alcotest.(check (float 1e-4)) "completion 1" 1.0 sol.completion.(0)

let test_cp_multiprocessor_split () =
  (* two equal jobs, two processors: each runs alone at its density *)
  let inst =
    Instance.make ~power:p3 ~machines:2
      [
        mk_job ~id:0 ~r:0.0 ~d:1.0 ~w:3.0 ~v:Float.infinity;
        mk_job ~id:1 ~r:0.0 ~d:1.0 ~w:3.0 ~v:Float.infinity;
      ]
  in
  let sol = Cp.solve (Cp.make inst) Must_finish in
  check_float "two dedicated processors" 54.0 sol.energy

let test_cp_to_schedule () =
  let inst =
    Instance.make ~power:p2 ~machines:1
      [
        mk_job ~id:0 ~r:0.0 ~d:2.0 ~w:2.0 ~v:Float.infinity;
        mk_job ~id:1 ~r:0.0 ~d:1.0 ~w:1.0 ~v:Float.infinity;
      ]
  in
  let cp = Cp.make inst in
  let sol = Cp.solve cp Must_finish in
  let sched = Cp.to_schedule cp sol.x in
  (match Schedule.validate inst sched with
  | Ok () -> ()
  | Error e -> Alcotest.failf "invalid schedule: %s" e);
  Alcotest.(check (float 1e-3)) "schedule energy matches solution" sol.energy
    (Schedule.energy p2 sched)

(* random instances: CP must-finish optimum matches exact YDS on m=1 *)
let gen_instance =
  QCheck.Gen.(
    let* n = 1 -- 6 in
    let* jobs =
      list_size (return n)
        (let* r = float_range 0.0 8.0 in
         let* span = float_range 0.5 4.0 in
         let* w = float_range 0.2 3.0 in
         let* v = float_range 0.1 20.0 in
         return (r, r +. span, w, v))
    in
    return jobs)

let arb_instance =
  QCheck.make gen_instance ~print:(fun jobs ->
      String.concat ";"
        (List.map
           (fun (r, d, w, v) -> Printf.sprintf "(%g,%g,%g,%g)" r d w v)
           jobs))

let instance_of ?(power = p2) ?(machines = 1) ?(must_finish = false) jobs =
  Instance.make ~power ~machines
    (List.mapi
       (fun i (r, d, w, v) ->
         mk_job ~id:i ~r ~d ~w ~v:(if must_finish then Float.infinity else v))
       jobs)

let prop_cp_matches_yds =
  QCheck.Test.make ~name:"CP must-finish optimum = YDS energy (m=1)"
    ~count:60 arb_instance (fun jobs ->
      let inst = instance_of ~must_finish:true jobs in
      let sol = Cp.solve ~max_iters:8000 (Cp.make inst) Must_finish in
      let yds = Speedscale_single.Yds.energy p2 (Array.to_list inst.jobs) in
      Float.abs (sol.energy -. yds) <= 2e-2 *. (1.0 +. yds))

(* ------------------------------------------------------------------ *)
(* KKT residuals                                                       *)
(* ------------------------------------------------------------------ *)

let prop_kkt_small_at_optimum =
  QCheck.Test.make ~name:"KKT residual small at solved points" ~count:30
    arb_instance (fun jobs ->
      let inst = instance_of ~must_finish:true jobs in
      let cp = Cp.make inst in
      let sol = Cp.solve ~max_iters:9000 cp Must_finish in
      let r = Kkt.residual cp Must_finish sol.x in
      if r > 5e-2 then
        QCheck.Test.fail_reportf "residual %.3g too large" r
      else true)

let prop_kkt_large_when_perturbed =
  QCheck.Test.make ~name:"KKT residual detects non-optimal points" ~count:30
    arb_instance (fun jobs ->
      (* a uniform spread is not optimal unless the instance is degenerate;
         compare the residuals rather than using an absolute cutoff *)
      QCheck.assume (List.length jobs >= 2);
      let inst = instance_of ~must_finish:true jobs in
      let cp = Cp.make inst in
      let sol = Cp.solve ~max_iters:9000 cp Must_finish in
      let uniform =
        Cp.project cp Must_finish (Array.make (Cp.n_vars cp) 1.0)
      in
      let r_opt = Kkt.residual cp Must_finish sol.x in
      let r_uni = Kkt.residual cp Must_finish uniform in
      (* either the uniform point is (nearly) optimal too, or its residual
         must dominate the solved one *)
      r_uni >= r_opt -. 1e-9)

let test_kkt_profitable_rejected_job () =
  (* job too expensive to finish: at the CP optimum the marginal where it
     IS partially scheduled equals its value *)
  let inst =
    Instance.make ~power:p3 ~machines:1
      [ mk_job ~id:0 ~r:0.0 ~d:1.0 ~w:2.0 ~v:1.0 ]
  in
  let cp = Cp.make inst in
  let sol = Cp.solve ~max_iters:9000 cp Profitable in
  let r = Kkt.residual cp Profitable sol.x in
  Alcotest.(check bool) (Printf.sprintf "residual %.3g < 5e-2" r) true
    (r < 5e-2)

(* ------------------------------------------------------------------ *)
(* Dual certificate                                                    *)
(* ------------------------------------------------------------------ *)

let test_dual_zero_lambda () =
  let inst = instance_of [ (0.0, 1.0, 1.0, 5.0) ] in
  check_float "g(0) = 0" 0.0 (Dual.value inst ~lambda:[| 0.0 |])

let test_dual_single_job_closed_form () =
  (* one job [0,1], w=1, alpha=2.  g(λ) = (1-2)·(λ/2)^2 + min(λ, v)
     with ŝ = λ/(αw) = λ/2. *)
  let inst = instance_of ~power:p2 [ (0.0, 1.0, 1.0, 10.0) ] in
  let g l = Dual.value inst ~lambda:[| l |] in
  List.iter
    (fun l ->
      let expected = (-.((l /. 2.0) ** 2.0)) +. Float.min l 10.0 in
      check_float (Printf.sprintf "g(%g)" l) expected (g l))
    [ 0.5; 1.0; 2.0; 12.0 ]

let test_dual_caps_at_value () =
  (* the y-part contributes min(λ, v) *)
  let inst = instance_of ~power:p2 [ (0.0, 1.0, 1.0, 1.0) ] in
  let g l = Dual.value inst ~lambda:[| l |] in
  Alcotest.(check bool) "λ above v brings no credit" true (g 4.0 < g 1.9)

let prop_weak_duality =
  QCheck.Test.make
    ~name:"g(λ) lower-bounds every feasible cost (weak duality)" ~count:60
    QCheck.(pair arb_instance (float_range 0.0 1.5))
    (fun (jobs, scale) ->
      let inst = instance_of jobs in
      let n = Instance.n_jobs inst in
      (* multipliers proportional to values, capped at v_j *)
      let lambda =
        Array.init n (fun j ->
            Float.min ((Instance.job inst j).value *. scale)
              (Instance.job inst j).value)
      in
      let g = Dual.value inst ~lambda in
      (* two feasible schedules: reject everything; or finish everything
         with YDS *)
      let reject_all = Instance.total_value inst in
      let finish_all =
        Speedscale_single.Yds.energy p2
          (Array.to_list
             (Instance.with_values inst (fun _ -> Float.infinity)).jobs)
      in
      g <= reject_all +. 1e-6 *. (1.0 +. reject_all)
      && g <= finish_all +. 1e-6 *. (1.0 +. finish_all))

let prop_dual_certificate_vs_cp =
  QCheck.Test.make ~name:"g(λ) <= CP optimum" ~count:40
    QCheck.(pair arb_instance (float_range 0.0 1.0))
    (fun (jobs, scale) ->
      let inst = instance_of jobs in
      let n = Instance.n_jobs inst in
      let lambda =
        Array.init n (fun j -> (Instance.job inst j).value *. scale)
      in
      let g = Dual.value inst ~lambda in
      let sol = Cp.solve ~max_iters:6000 (Cp.make inst) Profitable in
      g <= sol.objective +. 2e-2 *. (1.0 +. Float.abs sol.objective))

(* The decisive test of the closed-form dual: g(λ) must lower-bound the
   Lagrangian L(x, y, λ) at EVERY point of the primal domain, not just at
   solutions.  We evaluate L explicitly from its definition (Equation (3)
   of the paper) at random feasible-domain points. *)
let lagrangian cp (inst : Instance.t) x y lambda =
  let energy = Cp.energy cp x in
  let completion = Cp.completion cp x in
  let n = Instance.n_jobs inst in
  let acc = ref energy in
  for j = 0 to n - 1 do
    let v = (Instance.job inst j).value in
    acc := !acc +. ((1.0 -. y.(j)) *. v);
    acc := !acc +. (lambda.(j) *. (y.(j) -. completion.(j)))
  done;
  !acc

let prop_dual_lower_bounds_lagrangian =
  QCheck.Test.make
    ~name:"g(lambda) <= L(x, y, lambda) at random primal points" ~count:100
    QCheck.(
      triple arb_instance (float_bound_exclusive 1.5)
        (pair (int_bound 1000) (int_bound 1000)))
    (fun (jobs, scale, (sx, sy)) ->
      let inst = instance_of jobs in
      let n = Instance.n_jobs inst in
      let cp = Cp.make inst in
      let lambda =
        Array.init n (fun j ->
            Float.min ((Instance.job inst j).value *. scale)
              (Instance.job inst j).value)
      in
      let tl = Cp.timeline cp in
      let g = Dual.evaluate inst tl ~lambda in
      (* random x in the domain (x >= 0, unconstrained sum is fine for the
         Lagrangian: the dual's inf ranges over x >= 0, 0 <= y <= 1) *)
      let stx = Random.State.make [| sx; 17 |] in
      let sty = Random.State.make [| sy; 39 |] in
      let x =
        Array.init (Cp.n_vars cp) (fun _ -> Random.State.float stx 1.2)
      in
      let y = Array.init n (fun _ -> Random.State.float sty 1.0) in
      let l = lagrangian cp inst x y lambda in
      if g.value > l +. (1e-6 *. (1.0 +. Float.abs l)) then
        QCheck.Test.fail_reportf "g = %.9g exceeds L = %.9g" g.value l
      else true)

let () =
  let q = QCheck_alcotest.to_alcotest in
  Alcotest.run "solver"
    [
      ( "proj",
        [
          Alcotest.test_case "simplex examples" `Quick test_simplex_examples;
          Alcotest.test_case "capped simplex" `Quick test_capped_simplex;
          q prop_simplex_feasible;
          q prop_simplex_is_projection;
          q prop_capped_idempotent;
        ] );
      ( "pgd",
        [
          Alcotest.test_case "quadratic on simplex" `Quick test_pgd_quadratic;
          Alcotest.test_case "box" `Quick test_pgd_unconstrained_box;
        ] );
      ( "cp",
        [
          Alcotest.test_case "single job" `Quick test_cp_single_job;
          Alcotest.test_case "two intervals" `Quick test_cp_two_intervals_alpha2;
          Alcotest.test_case "rejects cheap job" `Quick
            test_cp_profitable_rejects_cheap_job;
          Alcotest.test_case "finishes valuable job" `Quick
            test_cp_profitable_finishes_valuable_job;
          Alcotest.test_case "multiprocessor split" `Quick
            test_cp_multiprocessor_split;
          Alcotest.test_case "to_schedule" `Quick test_cp_to_schedule;
          q prop_cp_matches_yds;
        ] );
      ( "kkt",
        [
          q prop_kkt_small_at_optimum;
          q prop_kkt_large_when_perturbed;
          Alcotest.test_case "profitable rejected" `Quick
            test_kkt_profitable_rejected_job;
        ] );
      ( "dual",
        [
          Alcotest.test_case "zero lambda" `Quick test_dual_zero_lambda;
          Alcotest.test_case "closed form" `Quick test_dual_single_job_closed_form;
          Alcotest.test_case "caps at value" `Quick test_dual_caps_at_value;
          q prop_weak_duality;
          q prop_dual_certificate_vs_cp;
          q prop_dual_lower_bounds_lagrangian;
        ] );
    ]
