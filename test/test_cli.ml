(* End-to-end smoke tests of the psched command-line tool: generate an
   instance, then exercise every subcommand against the real binary and
   check exit codes and key output markers. *)

(* Locate the binary whether we run under `dune runtest` (cwd =
   _build/default/test) or `dune exec` from the project root. *)
let psched =
  let candidates =
    [
      "../bin/psched.exe";
      "_build/default/bin/psched.exe";
      "bin/psched.exe";
    ]
  in
  match List.find_opt Sys.file_exists candidates with
  | Some p -> p
  | None -> "../bin/psched.exe"

let run_capture args =
  let out = Filename.temp_file "psched" ".out" in
  let cmd =
    Printf.sprintf "%s %s > %s 2>&1"
      (Filename.quote psched)
      (String.concat " " (List.map Filename.quote args))
      (Filename.quote out)
  in
  let code = Sys.command cmd in
  let ic = open_in out in
  let text =
    Fun.protect
      ~finally:(fun () ->
        close_in ic;
        Sys.remove out)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  (code, text)

let contains text sub =
  let n = String.length text and k = String.length sub in
  let rec go i = i + k <= n && (String.sub text i k = sub || go (i + 1)) in
  k = 0 || go 0

let check_ok name (code, text) markers =
  Alcotest.(check int) (name ^ ": exit code") 0 code;
  List.iter
    (fun m ->
      Alcotest.(check bool)
        (Printf.sprintf "%s: output mentions %S" name m)
        true (contains text m))
    markers

let with_instance f =
  let path = Filename.temp_file "psched" ".inst" in
  Fun.protect
    ~finally:(fun () -> if Sys.file_exists path then Sys.remove path)
    (fun () ->
      let code, _ =
        run_capture
          [ "generate"; "--preset"; "random"; "-n"; "6"; "-m"; "2"; "--seed";
            "3"; "-o"; path ]
      in
      Alcotest.(check int) "generate exit code" 0 code;
      f path)

let test_generate_stdout () =
  let code, text = run_capture [ "generate"; "-n"; "3"; "--alpha"; "2.5" ] in
  Alcotest.(check int) "exit" 0 code;
  Alcotest.(check bool) "has header" true (contains text "alpha 2.5");
  Alcotest.(check bool) "has jobs" true (contains text "job ")

let test_run_pd () =
  with_instance (fun path ->
      check_ok "run" (run_capture [ "run"; path ]) [ "PD"; "valid" ])

let test_run_with_schedule () =
  with_instance (fun path ->
      check_ok "run --show-schedule"
        (run_capture [ "run"; path; "--show-schedule" ])
        [ "PD"; "proc 0" ])

let test_compare () =
  with_instance (fun path ->
      check_ok "compare"
        (run_capture [ "compare"; path ])
        [ "PD"; "mOA"; "OPT-energy" ])

let test_engines () =
  let code, text = run_capture [ "engines" ] in
  Alcotest.(check int) "engines exit code" 0 code;
  List.iter
    (fun m ->
      Alcotest.(check bool)
        (Printf.sprintf "engines output mentions %S" m)
        true (contains text m))
    [
      "online engines";
      "offline baselines";
      "npd";
      "non-preemptive";
      "migratory";
      "preemptive";
      "OPT-migratory";
    ];
  (* every registry engine must appear *)
  List.iter
    (fun name ->
      Alcotest.(check bool)
        (Printf.sprintf "engines lists %S" name)
        true
        (contains text name))
    [ "pd"; "oa"; "avr"; "bkp"; "cll"; "moa"; "mavr"; "mcll"; "partitioned" ]

let test_certify () =
  with_instance (fun path ->
      check_ok "certify"
        (run_capture [ "certify"; path ])
        [ "dual bound"; "Theorem 3 certificate: HOLDS" ])

let test_analyze () =
  with_instance (fun path ->
      check_ok "analyze"
        (run_capture [ "analyze"; path ])
        [ "category"; "thm3=true" ])

let test_provision () =
  with_instance (fun path ->
      check_ok "provision"
        (run_capture [ "provision"; path ])
        [ "min speed cap" ])

let test_replay () =
  with_instance (fun path ->
      let csv = Filename.temp_file "psched" ".csv" in
      Fun.protect
        ~finally:(fun () -> if Sys.file_exists csv then Sys.remove csv)
        (fun () ->
          check_ok "replay"
            (run_capture [ "replay"; path; "--csv"; csv ])
            [ "arrival"; "complete"; "energy" ];
          Alcotest.(check bool) "csv written" true (Sys.file_exists csv)))

let test_gantt () =
  with_instance (fun path ->
      check_ok "gantt"
        (run_capture [ "gantt"; path; "--width"; "40" ])
        [ "p0 "; "speed" ])

let test_unknown_algorithm_fails () =
  with_instance (fun path ->
      let code, _ = run_capture [ "run"; path; "-a"; "nonsense" ] in
      Alcotest.(check bool) "non-zero exit" true (code <> 0))

(* ---------------- stream error paths ---------------- *)

(* Malformed streams must die with a line-numbered one-liner on stderr
   and exit status 2 — never an uncaught exception with a backtrace. *)
let with_stream text f =
  let path = Filename.temp_file "psched" ".stream" in
  Fun.protect
    ~finally:(fun () -> if Sys.file_exists path then Sys.remove path)
    (fun () ->
      let oc = open_out path in
      output_string oc text;
      close_out oc;
      f path)

let check_stream_error name text markers =
  with_stream text (fun path ->
      let code, out = run_capture [ "stream"; path ] in
      Alcotest.(check int) (name ^ ": exit 2") 2 code;
      Alcotest.(check bool)
        (name ^ ": no backtrace") false
        (contains out "Raised at");
      List.iter
        (fun m ->
          Alcotest.(check bool)
            (Printf.sprintf "%s: mentions %S" name m)
            true (contains out m))
        markers)

let test_stream_rejects_malformed () =
  check_stream_error "nan workload" "alpha 3\nmachines 1\njob 0 1 nan 5\n"
    [ "line 3"; "workload must be positive and finite" ];
  check_stream_error "negative workload"
    "alpha 3\nmachines 1\njob 0 1 -2 5\n"
    [ "line 3"; "workload" ];
  check_stream_error "deadline before release"
    "alpha 3\nmachines 1\njob 2 1 1 5\n"
    [ "line 3"; "deadline" ];
  check_stream_error "nan value" "alpha 3\nmachines 1\njob 0 1 1 nan\n"
    [ "line 3"; "value must be >= 0" ];
  check_stream_error "job before alpha header" "job 0 1 1 5\n"
    [ "line 1"; "alpha" ];
  check_stream_error "job before machines header" "alpha 3\njob 0 1 1 5\n"
    [ "line 2"; "machines" ];
  check_stream_error "out-of-order arrivals"
    "alpha 3\nmachines 1\njob 5 6 1 5\njob 1 2 1 5\n"
    [ "line 4"; "release-ordered" ];
  check_stream_error "unrecognized line" "alpha 3\nbogus\n"
    [ "line 2"; "unrecognized" ];
  check_stream_error "empty stream" "alpha 3\nmachines 1\n"
    [ "no jobs in the stream" ]

let test_stream_unreadable_input () =
  let code, out = run_capture [ "stream"; "/nonexistent/stream.txt" ] in
  Alcotest.(check int) "exit 2" 2 code;
  Alcotest.(check bool) "no backtrace" false (contains out "Raised at")

let test_stream_bad_restore () =
  with_stream "alpha 3\nmachines 2\njob 0 1 1 5\n" (fun path ->
      let code, out =
        run_capture [ "stream"; path; "--restore"; "/nonexistent" ]
      in
      Alcotest.(check int) "exit 2" 2 code;
      Alcotest.(check bool) "no backtrace" false (contains out "Raised at"))

let test_stream_sharded_needs_machines () =
  with_stream "alpha 3\nmachines 1\njob 0 1 1 5\n" (fun path ->
      let code, out = run_capture [ "serve"; path; "--shards"; "4" ] in
      Alcotest.(check int) "exit 2" 2 code;
      Alcotest.(check bool)
        "explains the split" true
        (contains out "machines >= shards"))

(* The failover loop end to end, through the real binary: run sharded,
   kill mid-stream after a checkpoint, restore, and require the stitched
   output to be byte-identical to the straight-through run. *)
let test_stream_kill_restore_byte_identical () =
  let dir = Filename.temp_file "psched" ".ck" in
  Sys.remove dir;
  Sys.mkdir dir 0o755;
  let inst = Filename.temp_file "psched" ".inst" in
  Fun.protect
    ~finally:(fun () ->
      if Sys.file_exists dir then begin
        Array.iter
          (fun n -> Sys.remove (Filename.concat dir n))
          (Sys.readdir dir);
        Sys.rmdir dir
      end;
      if Sys.file_exists inst then Sys.remove inst)
    (fun () ->
      let code, _ =
        run_capture
          [ "generate"; "--preset"; "random"; "-n"; "120"; "-m"; "4";
            "--seed"; "7"; "-o"; inst ]
      in
      Alcotest.(check int) "generate" 0 code;
      let code, full = run_capture [ "stream"; inst; "--shards"; "4" ] in
      Alcotest.(check int) "full run" 0 code;
      let code, part1 =
        run_capture
          [ "stream"; inst; "--shards"; "4"; "--snapshot-dir"; dir;
            "--snapshot-every"; "40"; "--kill-after"; "100" ]
      in
      Alcotest.(check int) "killed run exits 0" 0 code;
      let code, part2 = run_capture [ "stream"; inst; "--restore"; dir ] in
      Alcotest.(check int) "restored run" 0 code;
      (* records are 8 lines each; the last committed checkpoint is at
         seq 80, so the restored run re-emits from there *)
      let lines = String.split_on_char '\n' part1 in
      let prefix =
        List.filteri (fun i _ -> i < 8 * 80) lines |> String.concat "\n"
      in
      Alcotest.(check string)
        "stitched output equals the straight-through run" full
        (prefix ^ "\n" ^ part2))

(* ---------------- slint ---------------- *)

let slint =
  let candidates =
    [ "../bin/slint.exe"; "_build/default/bin/slint.exe"; "bin/slint.exe" ]
  in
  match List.find_opt Sys.file_exists candidates with
  | Some p -> p
  | None -> "../bin/slint.exe"

let run_slint args =
  let out = Filename.temp_file "slint" ".out" in
  let cmd =
    Printf.sprintf "%s %s > %s 2>&1" (Filename.quote slint)
      (String.concat " " (List.map Filename.quote args))
      (Filename.quote out)
  in
  let code = Sys.command cmd in
  let ic = open_in out in
  let text =
    Fun.protect
      ~finally:(fun () ->
        close_in ic;
        Sys.remove out)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  (code, text)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let write_file path text =
  let oc = open_out_bin path in
  output_string oc text;
  close_out oc

(* A throwaway scan root holding lib/fixture.ml with the given text (plus
   an interface so missing-mli stays quiet). *)
let with_lint_tree text f =
  let root = Filename.temp_file "slint" ".d" in
  Sys.remove root;
  Sys.mkdir root 0o755;
  Sys.mkdir (Filename.concat root "lib") 0o755;
  let rm p = if Sys.file_exists p then Sys.remove p in
  Fun.protect
    ~finally:(fun () ->
      Array.iter
        (fun name -> rm (Filename.concat (Filename.concat root "lib") name))
        (Sys.readdir (Filename.concat root "lib"));
      Array.iter
        (fun name ->
          let p = Filename.concat root name in
          if not (Sys.is_directory p) then rm p)
        (Sys.readdir root);
      Sys.rmdir (Filename.concat root "lib");
      Sys.rmdir root)
    (fun () ->
      write_file (Filename.concat root "lib/fixture.ml") text;
      write_file (Filename.concat root "lib/fixture.mli") "";
      f root)

let clean_source = "let f x = x + 1\n"

let racy_source =
  "let total = ref 0\n\
   let add x = total := !total + x\n\
   let go xs = Domain.spawn (fun () -> List.iter add xs)\n"

let test_slint_exit_codes () =
  with_lint_tree clean_source (fun root ->
      let code, _ = run_slint [ "--root"; root ] in
      Alcotest.(check int) "clean tree exits 0" 0 code);
  with_lint_tree racy_source (fun root ->
      let code, text = run_slint [ "--root"; root ] in
      Alcotest.(check int) "finding exits 1" 1 code;
      Alcotest.(check bool)
        "names the rule" true
        (contains text "domain-race"));
  let code, text = run_slint [ "--rule"; "no-such-rule"; "--root"; "." ] in
  Alcotest.(check int) "unknown rule exits 2" 2 code;
  Alcotest.(check bool) "lists known rules" true (contains text "domain-race");
  let code, text = run_slint [ "--help" ] in
  Alcotest.(check int) "help exits 0" 0 code;
  Alcotest.(check bool) "documents exit codes" true (contains text "Exit codes")

let test_slint_rule_filter () =
  with_lint_tree racy_source (fun root ->
      (* an unrelated single rule does not see the race *)
      let code, _ = run_slint [ "--root"; root; "--rule"; "float-eq" ] in
      Alcotest.(check int) "filtered rule exits 0" 0 code;
      let code, text = run_slint [ "--root"; root; "--rule"; "domain-race" ] in
      Alcotest.(check int) "selected rule exits 1" 1 code;
      Alcotest.(check bool) "reports the race" true (contains text "domain-race"))

let test_slint_sarif () =
  with_lint_tree racy_source (fun root ->
      let sarif = Filename.temp_file "slint" ".sarif" in
      Fun.protect
        ~finally:(fun () -> if Sys.file_exists sarif then Sys.remove sarif)
        (fun () ->
          let code, _ = run_slint [ "--root"; root; "--sarif"; sarif ] in
          Alcotest.(check int) "still exits 1" 1 code;
          let text = read_file sarif in
          Alcotest.(check bool)
            "sarif version" true
            (contains text {|"version":"2.1.0"|});
          Alcotest.(check bool)
            "result carries the rule id" true
            (contains text {|"ruleId":"domain-race"|});
          Alcotest.(check bool)
            "physical location present" true
            (contains text "lib/fixture.ml")))

let test_slint_write_baseline () =
  with_lint_tree racy_source (fun root ->
      let code, _ = run_slint [ "--root"; root; "--write-baseline" ] in
      Alcotest.(check int) "write exits 0" 0 code;
      let baseline = Filename.concat root "lint-baseline.sexp" in
      Alcotest.(check bool)
        "baseline written" true
        (contains (read_file baseline) "domain-race");
      (* the grandfathered finding no longer fails the scan *)
      let code, _ = run_slint [ "--root"; root ] in
      Alcotest.(check int) "baselined tree exits 0" 0 code)

let test_slint_baseline_rot () =
  with_lint_tree racy_source (fun root ->
      let code, _ = run_slint [ "--root"; root; "--write-baseline" ] in
      Alcotest.(check int) "write exits 0" 0 code;
      (* the finding disappears from the source: its entry is now rot,
         and rot is a failure, not a silent free pass *)
      write_file (Filename.concat root "lib/fixture.ml") clean_source;
      let code, text = run_slint [ "--root"; root ] in
      Alcotest.(check int) "stale entry exits 1" 1 code;
      Alcotest.(check bool)
        "explains the staleness" true
        (contains text "stale baseline entry");
      Alcotest.(check bool)
        "points at the cure" true
        (contains text "--update-baseline");
      (* --update-baseline prunes exactly the rotten entries *)
      let code, text = run_slint [ "--root"; root; "--update-baseline" ] in
      Alcotest.(check int) "prune exits 0" 0 code;
      Alcotest.(check bool) "reports the prune" true (contains text "pruned");
      let baseline = Filename.concat root "lint-baseline.sexp" in
      Alcotest.(check bool)
        "entry gone from the file" false
        (contains (read_file baseline) "domain-race");
      let code, _ = run_slint [ "--root"; root ] in
      Alcotest.(check int) "pruned tree exits 0" 0 code)

let test_slint_explain () =
  let code, text = run_slint [ "--explain"; "domain-race" ] in
  Alcotest.(check int) "explain exits 0" 0 code;
  Alcotest.(check bool) "names the rule" true (contains text "domain-race");
  Alcotest.(check bool)
    "includes the doc" true
    (contains text "Atomic/Mutex");
  Alcotest.(check bool)
    "whole-program rules say so" true
    (contains text "whole-program");
  Alcotest.(check bool)
    "shows the suppression syntax" true
    (contains text ("slint: " ^ "allow"));
  let code, text = run_slint [ "--explain"; "nan-flow" ] in
  Alcotest.(check int) "nan-flow explain exits 0" 0 code;
  Alcotest.(check bool) "has an example" true (contains text "Example:");
  let code, text = run_slint [ "--explain"; "no-such-rule" ] in
  Alcotest.(check int) "unknown rule exits 2" 2 code;
  Alcotest.(check bool)
    "lists the known rules" true
    (contains text "magic-tolerance")

let () =
  Alcotest.run "cli"
    [
      ( "psched",
        [
          Alcotest.test_case "generate" `Quick test_generate_stdout;
          Alcotest.test_case "run" `Quick test_run_pd;
          Alcotest.test_case "run schedule" `Quick test_run_with_schedule;
          Alcotest.test_case "compare" `Quick test_compare;
          Alcotest.test_case "engines" `Quick test_engines;
          Alcotest.test_case "certify" `Quick test_certify;
          Alcotest.test_case "analyze" `Quick test_analyze;
          Alcotest.test_case "provision" `Quick test_provision;
          Alcotest.test_case "replay" `Quick test_replay;
          Alcotest.test_case "gantt" `Quick test_gantt;
          Alcotest.test_case "unknown algorithm" `Quick
            test_unknown_algorithm_fails;
        ] );
      ( "stream",
        [
          Alcotest.test_case "rejects malformed streams" `Quick
            test_stream_rejects_malformed;
          Alcotest.test_case "unreadable input" `Quick
            test_stream_unreadable_input;
          Alcotest.test_case "bad --restore" `Quick test_stream_bad_restore;
          Alcotest.test_case "machines < shards" `Quick
            test_stream_sharded_needs_machines;
          Alcotest.test_case "kill/restore byte-identical" `Quick
            test_stream_kill_restore_byte_identical;
        ] );
      ( "slint",
        [
          Alcotest.test_case "exit codes" `Quick test_slint_exit_codes;
          Alcotest.test_case "--rule filter" `Quick test_slint_rule_filter;
          Alcotest.test_case "--sarif" `Quick test_slint_sarif;
          Alcotest.test_case "--write-baseline" `Quick
            test_slint_write_baseline;
          Alcotest.test_case "baseline rot" `Quick test_slint_baseline_rot;
          Alcotest.test_case "--explain" `Quick test_slint_explain;
        ] );
    ]
