(* Tests for the perf-regression gate (Speedscale_obs.Diff and the
   `psched bench-diff` CLI), the parallel-runner determinism of the bench
   harness, and the PD cost/certificate laws the benchmark records lean
   on. *)

open Speedscale_obs
open Speedscale_model

(* ------------------------------------------------------------------ *)
(* Executable discovery (same convention as test_bench.ml)              *)
(* ------------------------------------------------------------------ *)

let find_exe candidates =
  match List.find_opt Sys.file_exists candidates with
  | Some p -> p
  | None -> List.hd candidates

let bench_exe =
  find_exe
    [ "../bench/main.exe"; "_build/default/bench/main.exe"; "bench/main.exe" ]

let psched_exe =
  find_exe [ "../bin/psched.exe"; "_build/default/bin/psched.exe"; "bin/psched.exe" ]

let run_command cmd =
  let out = Filename.temp_file "diff" ".out" in
  let code = Sys.command (Printf.sprintf "%s > %s 2>&1" cmd (Filename.quote out)) in
  let ic = open_in_bin out in
  let text =
    Fun.protect
      ~finally:(fun () ->
        close_in ic;
        Sys.remove out)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  (code, text)

(* ------------------------------------------------------------------ *)
(* Diff unit behavior                                                   *)
(* ------------------------------------------------------------------ *)

let timing_rec id ns =
  Record.make ~id
    ~timing:{ Record.no_timing with ns_per_run = Some ns }
    Record.Timing

let verdict_rec id v =
  Record.make ~id ~verdict:v
    ~timing:{ Record.no_timing with wall_s = Some 0.5 }
    Record.Experiment

let mk_file records =
  { Record.version = Record.schema_version;
    env = Record.current_env ~jobs:1;
    records }

let test_diff_identical_is_ok () =
  let f = mk_file [ timing_rec "a" 100.0; timing_rec "b" 5.0; verdict_rec "E1" true ] in
  let r = Diff.compare_files f f in
  Alcotest.(check bool) "ok" true (Diff.ok r);
  Alcotest.(check int) "compared" 3 r.compared;
  Alcotest.(check int) "regressions" 0 r.regressions;
  Alcotest.(check int) "verdict breaks" 0 r.verdict_breaks;
  List.iter
    (fun (e : Diff.entry) ->
      match e.status with
      | Diff.Stable _ -> ()
      | _ -> Alcotest.failf "entry %s not Stable" e.id)
    r.entries

let test_diff_flags_slowdown () =
  let old_f = mk_file [ timing_rec "a" 100.0; timing_rec "b" 100.0 ] in
  let new_f = mk_file [ timing_rec "a" 125.0; timing_rec "b" 104.0 ] in
  let r = Diff.compare_files old_f new_f in
  Alcotest.(check bool) "not ok" false (Diff.ok r);
  Alcotest.(check int) "one regression" 1 r.regressions;
  (match (List.find (fun (e : Diff.entry) -> e.id = "a") r.entries).status with
  | Diff.Regression ratio -> Alcotest.(check (float 1e-9)) "ratio" 1.25 ratio
  | _ -> Alcotest.fail "a must be a Regression");
  (* the human rendering names the failure *)
  let text = Diff.to_string r in
  Alcotest.(check bool) "rendered" true
    (let sub = "REGRESSION" in
     let n = String.length text and k = String.length sub in
     let rec go i = i + k <= n && (String.sub text i k = sub || go (i + 1)) in
     go 0)

let test_diff_improvement_is_ok () =
  let old_f = mk_file [ timing_rec "a" 100.0 ] in
  let new_f = mk_file [ timing_rec "a" 50.0 ] in
  let r = Diff.compare_files old_f new_f in
  Alcotest.(check bool) "ok" true (Diff.ok r);
  Alcotest.(check int) "improvement counted" 1 r.improvements

let test_diff_verdict_break_fails () =
  (* same timing, CONFIRMED -> NOT CONFIRMED: never "just noise" *)
  let old_f = mk_file [ verdict_rec "E1" true ] in
  let new_f = mk_file [ verdict_rec "E1" false ] in
  let r = Diff.compare_files old_f new_f in
  Alcotest.(check bool) "not ok" false (Diff.ok r);
  Alcotest.(check int) "verdict breaks" 1 r.verdict_breaks;
  Alcotest.(check int) "no timing regression" 0 r.regressions

let test_diff_added_removed_do_not_fail () =
  let old_f = mk_file [ timing_rec "a" 100.0; timing_rec "gone" 7.0 ] in
  let new_f = mk_file [ timing_rec "a" 100.0; timing_rec "fresh" 9.0 ] in
  let r = Diff.compare_files old_f new_f in
  Alcotest.(check bool) "growing the suite never blocks" true (Diff.ok r);
  let status_of id =
    (List.find (fun (e : Diff.entry) -> e.id = id) r.entries).status
  in
  (match status_of "gone" with
  | Diff.Removed -> ()
  | _ -> Alcotest.fail "gone must be Removed");
  match status_of "fresh" with
  | Diff.Added -> ()
  | _ -> Alcotest.fail "fresh must be Added"

let test_diff_threshold_configurable () =
  let old_f = mk_file [ timing_rec "a" 100.0 ] in
  let new_f = mk_file [ timing_rec "a" 115.0 ] in
  (* 15% slower: fails at the default 10%, passes at 20% *)
  Alcotest.(check bool) "default flags it" false
    (Diff.ok (Diff.compare_files old_f new_f));
  Alcotest.(check bool) "loose threshold passes" true
    (Diff.ok (Diff.compare_files ~threshold:0.20 old_f new_f));
  Alcotest.check_raises "non-positive threshold rejected"
    (Invalid_argument "Diff.compare_files: threshold must be positive")
    (fun () -> ignore (Diff.compare_files ~threshold:0.0 old_f new_f))

let gauge_rec id ~ns gauges counters =
  Record.make ~id
    ~counters:
      (List.map (fun (k, v) -> (Record.resident_gauge_prefix ^ k, v)) gauges
      @ counters)
    ~timing:{ Record.no_timing with ns_per_run = Some ns }
    Record.Timing

let test_diff_memory_growth_fails () =
  (* timing stable, but the live-interval gauge triples: a space
     regression must fail the gate exactly like a time regression *)
  let old_f = mk_file [ gauge_rec "soak" ~ns:100.0 [ ("live", 40) ] [] ] in
  let new_f = mk_file [ gauge_rec "soak" ~ns:100.0 [ ("live", 120) ] [] ] in
  let r = Diff.compare_files old_f new_f in
  Alcotest.(check bool) "not ok" false (Diff.ok r);
  Alcotest.(check int) "mem breaks" 1 r.mem_breaks;
  Alcotest.(check int) "no timing regression" 0 r.regressions;
  (match (List.hd r.entries).mem_broke with
  | Some (name, ratio) ->
    Alcotest.(check string) "gauge named" "resident_live" name;
    Alcotest.(check (float 1e-9)) "ratio" 3.0 ratio
  | None -> Alcotest.fail "mem_broke must be set");
  let text = Diff.to_string r in
  Alcotest.(check bool) "rendered" true
    (let sub = "MEM-GROWTH(resident_live" in
     let n = String.length text and k = String.length sub in
     let rec go i = i + k <= n && (String.sub text i k = sub || go (i + 1)) in
     go 0)

let test_diff_memory_within_threshold_ok () =
  let old_f = mk_file [ gauge_rec "soak" ~ns:100.0 [ ("live", 100) ] [] ] in
  let new_f = mk_file [ gauge_rec "soak" ~ns:100.0 [ ("live", 105) ] [] ] in
  let r = Diff.compare_files old_f new_f in
  Alcotest.(check bool) "ok" true (Diff.ok r);
  Alcotest.(check int) "no mem breaks" 0 r.mem_breaks

let test_diff_missing_gauge_tolerated () =
  (* an old baseline recorded before the gauge existed must not block the
     PR that introduces it, in either direction; and a non-gauge counter
     exploding is payload drift, not a memory break *)
  let old_f = mk_file [ timing_rec "soak" 100.0 ] in
  let new_f =
    mk_file [ gauge_rec "soak" ~ns:100.0 [ ("live", 1_000_000) ] [] ]
  in
  let r = Diff.compare_files old_f new_f in
  Alcotest.(check bool) "new gauge tolerated" true (Diff.ok r);
  Alcotest.(check int) "no mem breaks" 0 r.mem_breaks;
  let r_rev = Diff.compare_files new_f old_f in
  Alcotest.(check bool) "dropped gauge tolerated" true (Diff.ok r_rev);
  let old_c = mk_file [ gauge_rec "soak" ~ns:100.0 [] [ ("probes", 10) ] ] in
  let new_c =
    mk_file [ gauge_rec "soak" ~ns:100.0 [] [ ("probes", 10_000) ] ]
  in
  let r_c = Diff.compare_files old_c new_c in
  Alcotest.(check bool) "plain counter is not gated" true (Diff.ok r_c);
  Alcotest.(check bool) "but reported as drift" true
    (List.exists (fun (e : Diff.entry) -> e.payload_drifted) r_c.entries)

let prop_diff_uniform_scaling =
  QCheck.Test.make
    ~name:"uniform slowdown beyond the threshold flags every record"
    ~count:200
    QCheck.(
      pair
        (list_of_size Gen.(1 -- 10) (make Gen.(float_range 1.0 1e9)))
        (make Gen.(float_range 1.2 3.0)))
    (fun (times, c) ->
      let ids = List.mapi (fun i t -> (Printf.sprintf "k%d" i, t)) times in
      let old_f = mk_file (List.map (fun (id, t) -> timing_rec id t) ids) in
      let new_f = mk_file (List.map (fun (id, t) -> timing_rec id (t *. c)) ids) in
      let r = Diff.compare_files old_f new_f in
      (not (Diff.ok r)) && r.regressions = List.length times)

let prop_diff_within_threshold_stable =
  QCheck.Test.make ~name:"jitter inside the threshold never fails" ~count:200
    QCheck.(
      pair
        (list_of_size Gen.(1 -- 10) (make Gen.(float_range 1.0 1e9)))
        (make Gen.(float_range 0.95 1.05)))
    (fun (times, c) ->
      let ids = List.mapi (fun i t -> (Printf.sprintf "k%d" i, t)) times in
      let old_f = mk_file (List.map (fun (id, t) -> timing_rec id t) ids) in
      let new_f = mk_file (List.map (fun (id, t) -> timing_rec id (t *. c)) ids) in
      Diff.ok (Diff.compare_files old_f new_f))

(* ------------------------------------------------------------------ *)
(* PD cost / certificate laws (the numbers the records carry)           *)
(* ------------------------------------------------------------------ *)

(* Same random family as bench/harness.ml. *)
let random_instance ~alpha ~machines ~seed ~n =
  let power = Power.make alpha in
  Speedscale_workload.Generate.random ~power ~machines ~seed ~n
    ~arrivals:(Poisson (float_of_int machines))
    ~sizes:(Uniform_size (0.3, 2.5))
    ~laxity:(0.4, 2.5)
    ~values:(Uniform_value (0.2, 20.0))

let arb_pd_setup =
  QCheck.make
    ~print:(fun (alpha, machines, seed, n) ->
      Printf.sprintf "alpha=%g m=%d seed=%d n=%d" alpha machines seed n)
    QCheck.Gen.(
      tup4 (oneofl [ 2.0; 2.5; 3.0 ]) (int_range 1 4) (int_range 0 10_000)
        (int_range 1 40))

(* NOTE the law that is deliberately ABSENT here: "cost(PD) <= Σ v_j"
   (PD no worse than rejecting everything) is NOT a theorem and is
   empirically false on this very family — with δ = α^(1-α) an accepted
   job may invest up to α^(α-1)·v_j of energy, and on 14 400 sampled
   instances 281 violated the naive bound (worst ratio ≈ 2.98).  The
   paper's actual guarantee chain, tested below, is
       cost(PD) <= α^α · g(λ̃) <= α^α · OPT <= α^α · Σ v_j
   with g(λ̃) <= OPT <= Σ v_j by weak duality (rejecting everything is a
   feasible solution of cost Σ v_j). *)

let prop_pd_dual_bound_below_total_value =
  QCheck.Test.make ~name:"weak duality: g(lambda) <= sum of values"
    ~count:120 arb_pd_setup (fun (alpha, machines, seed, n) ->
      let inst = random_instance ~alpha ~machines ~seed ~n in
      let r = Speedscale_core.Pd.run inst in
      r.dual_bound <= Instance.total_value inst *. (1.0 +. 1e-9) +. 1e-12)

let prop_pd_cost_within_guarantee_of_certificate =
  QCheck.Test.make
    ~name:"Theorem 3: cost(PD) <= alpha^alpha * g(lambda)" ~count:120
    arb_pd_setup (fun (alpha, machines, seed, n) ->
      let inst = random_instance ~alpha ~machines ~seed ~n in
      let r = Speedscale_core.Pd.run inst in
      Cost.total r.cost <= (r.guarantee *. r.dual_bound *. (1.0 +. 1e-6)) +. 1e-9)

let prop_pd_cost_within_guarantee_of_total_value =
  QCheck.Test.make
    ~name:"chained bound: cost(PD) <= alpha^alpha * sum of values"
    ~count:120 arb_pd_setup (fun (alpha, machines, seed, n) ->
      let inst = random_instance ~alpha ~machines ~seed ~n in
      let r = Speedscale_core.Pd.run inst in
      Cost.total r.cost
      <= (r.guarantee *. Instance.total_value inst *. (1.0 +. 1e-6)) +. 1e-9)

(* ------------------------------------------------------------------ *)
(* Parallel-runner determinism, end to end through the bench exe        *)
(* ------------------------------------------------------------------ *)

let bench_json ids ~jobs =
  let json = Filename.temp_file "bench" ".json" in
  let code, text =
    run_command
      (Printf.sprintf "%s %s --jobs %d --json %s"
         (Filename.quote bench_exe)
         (String.concat " " ids) jobs (Filename.quote json))
  in
  Alcotest.(check int) (Printf.sprintf "jobs=%d exit" jobs) 0 code;
  let file =
    match Record.read_file ~path:json with
    | Ok f -> f
    | Error e -> Alcotest.failf "jobs=%d: %s" jobs e
  in
  Sys.remove json;
  (text, file)

let test_parallel_equals_sequential () =
  let ids = [ "E2"; "E3"; "E4"; "E5" ] in
  let out1, f1 = bench_json ids ~jobs:1 in
  let out3, f3 = bench_json ids ~jobs:3 in
  (* stdout is byte-identical: the DLS sink + ordered merge leave no trace
     of the fan-out *)
  Alcotest.(check string) "stdout bytes" out1 out3;
  (* structured records agree on everything except wall-clock *)
  Alcotest.(check int) "record count"
    (List.length f1.records) (List.length f3.records);
  List.iter2
    (fun (a : Record.t) (b : Record.t) ->
      Alcotest.(check string) "record order" a.id b.id;
      Alcotest.(check bool)
        (Printf.sprintf "record %s payload" a.id)
        true
        (Record.equal_modulo_timing a b))
    f1.records f3.records;
  (* the producing jobs count is the only env difference *)
  Alcotest.(check int) "env jobs 1" 1 f1.env.jobs;
  Alcotest.(check int) "env jobs 3" 3 f3.env.jobs

(* ------------------------------------------------------------------ *)
(* psched bench-diff CLI                                                *)
(* ------------------------------------------------------------------ *)

let write_tmp_file records =
  let path = Filename.temp_file "bench" ".json" in
  Record.write_file ~path (mk_file records);
  path

let test_cli_identical_exits_zero () =
  let old_p = write_tmp_file [ timing_rec "a" 100.0; verdict_rec "E1" true ] in
  let code, text =
    run_command
      (Printf.sprintf "%s bench-diff %s %s" (Filename.quote psched_exe)
         (Filename.quote old_p) (Filename.quote old_p))
  in
  Sys.remove old_p;
  Alcotest.(check int) "exit 0" 0 code;
  Alcotest.(check bool) "says OK" true
    (let sub = "OK: no perf regressions" in
     let n = String.length text and k = String.length sub in
     let rec go i = i + k <= n && (String.sub text i k = sub || go (i + 1)) in
     go 0)

let test_cli_regression_exits_nonzero () =
  let old_p = write_tmp_file [ timing_rec "a" 100.0 ] in
  let new_p = write_tmp_file [ timing_rec "a" 130.0 ] in
  let code, _ =
    run_command
      (Printf.sprintf "%s bench-diff %s %s" (Filename.quote psched_exe)
         (Filename.quote old_p) (Filename.quote new_p))
  in
  (* 30% slower passes a loose threshold *)
  let code_loose, _ =
    run_command
      (Printf.sprintf "%s bench-diff --threshold 0.5 %s %s"
         (Filename.quote psched_exe) (Filename.quote old_p)
         (Filename.quote new_p))
  in
  Sys.remove old_p;
  Sys.remove new_p;
  Alcotest.(check int) "exit 1" 1 code;
  Alcotest.(check int) "loose threshold exit 0" 0 code_loose

let test_cli_bad_input_exits_nonzero () =
  let bad = Filename.temp_file "bench" ".json" in
  let oc = open_out bad in
  output_string oc "this is not json\n";
  close_out oc;
  let code, _ =
    run_command
      (Printf.sprintf "%s bench-diff %s %s" (Filename.quote psched_exe)
         (Filename.quote bad) (Filename.quote bad))
  in
  Sys.remove bad;
  Alcotest.(check int) "decode failure exit 2" 2 code

let () =
  let q = QCheck_alcotest.to_alcotest in
  Alcotest.run "diff"
    [
      ( "gate",
        [
          Alcotest.test_case "identical ok" `Quick test_diff_identical_is_ok;
          Alcotest.test_case "slowdown flagged" `Quick test_diff_flags_slowdown;
          Alcotest.test_case "improvement ok" `Quick
            test_diff_improvement_is_ok;
          Alcotest.test_case "verdict break fails" `Quick
            test_diff_verdict_break_fails;
          Alcotest.test_case "added/removed tolerated" `Quick
            test_diff_added_removed_do_not_fail;
          Alcotest.test_case "threshold" `Quick test_diff_threshold_configurable;
          Alcotest.test_case "memory growth fails" `Quick
            test_diff_memory_growth_fails;
          Alcotest.test_case "memory within threshold ok" `Quick
            test_diff_memory_within_threshold_ok;
          Alcotest.test_case "missing gauge tolerated" `Quick
            test_diff_missing_gauge_tolerated;
          q prop_diff_uniform_scaling;
          q prop_diff_within_threshold_stable;
        ] );
      ( "pd-laws",
        [
          q prop_pd_dual_bound_below_total_value;
          q prop_pd_cost_within_guarantee_of_certificate;
          q prop_pd_cost_within_guarantee_of_total_value;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "parallel = sequential" `Quick
            test_parallel_equals_sequential;
        ] );
      ( "cli",
        [
          Alcotest.test_case "identical exits 0" `Quick
            test_cli_identical_exits_zero;
          Alcotest.test_case "regression exits 1" `Quick
            test_cli_regression_exits_nonzero;
          Alcotest.test_case "bad input exits 2" `Quick
            test_cli_bad_input_exits_nonzero;
        ] );
    ]
