(* Unit and property tests for the model layer: power function, jobs,
   instances, atomic-interval timelines and schedules. *)

open Speedscale_util
open Speedscale_model

let check_float = Alcotest.(check (float 1e-9))
let p3 = Power.make 3.0
let p2 = Power.make 2.0

(* ------------------------------------------------------------------ *)
(* Power                                                               *)
(* ------------------------------------------------------------------ *)

let test_power_basics () =
  check_float "P_3(2)" 8.0 (Power.energy_rate p3 2.0);
  check_float "P_2(5)" 25.0 (Power.energy_rate p2 5.0);
  check_float "zero speed" 0.0 (Power.energy_rate p3 0.0);
  check_float "energy" 16.0 (Power.energy p3 ~speed:2.0 ~duration:2.0);
  check_float "deriv P_3" 12.0 (Power.deriv p3 2.0);
  check_float "deriv at 0" 0.0 (Power.deriv p3 0.0)

let test_power_inverse () =
  (* inv_deriv is the right inverse of deriv *)
  List.iter
    (fun s ->
      check_float
        (Printf.sprintf "roundtrip %g" s)
        s
        (Power.inv_deriv p3 (Power.deriv p3 s)))
    [ 0.0; 0.5; 1.0; 2.0; 10.0 ]

let test_power_constants () =
  check_float "alpha^alpha (3)" 27.0 (Power.competitive_bound p3);
  check_float "alpha^alpha (2)" 4.0 (Power.competitive_bound p2);
  check_float "delta* (3)" (1.0 /. 9.0) (Power.delta_star p3);
  check_float "delta* (2)" 0.5 (Power.delta_star p2);
  check_float "CLL bound (2)" (4.0 +. (4.0 *. Float.exp 1.0)) (Power.cll_bound p2);
  (* alpha = 2: factor alpha^((alpha-2)/(alpha-1)) = 2^0 = 1 *)
  check_float "rejection factor (2)" 1.0 (Power.rejection_speed_factor p2);
  check_float "rejection factor (3)" (3.0 ** 0.5) (Power.rejection_speed_factor p3)

let test_power_invalid () =
  Alcotest.check_raises "alpha = 1 rejected"
    (Invalid_argument "Power.make: alpha must be finite > 1: 1") (fun () ->
      ignore (Power.make 1.0))

let prop_power_convexity =
  QCheck.Test.make ~name:"P_alpha is convex" ~count:300
    QCheck.(
      triple (float_bound_exclusive 10.0) (float_bound_exclusive 10.0)
        (float_bound_exclusive 1.0))
    (fun (s1, s2, t) ->
      let mid = (t *. s1) +. ((1.0 -. t) *. s2) in
      let lhs = Power.energy_rate p3 mid in
      let rhs =
        (t *. Power.energy_rate p3 s1) +. ((1.0 -. t) *. Power.energy_rate p3 s2)
      in
      lhs <= rhs +. 1e-9)

(* ------------------------------------------------------------------ *)
(* Job                                                                 *)
(* ------------------------------------------------------------------ *)

let mk_job ?(id = 0) ?(r = 0.0) ?(d = 1.0) ?(w = 1.0) ?(v = 1.0) () =
  Job.make ~id ~release:r ~deadline:d ~workload:w ~value:v

let test_job_accessors () =
  let j = mk_job ~r:1.0 ~d:3.0 ~w:4.0 ~v:8.0 () in
  check_float "span" 2.0 (Job.span j);
  check_float "density" 2.0 (Job.density j);
  check_float "value density" 2.0 (Job.value_density j);
  Alcotest.(check bool) "available inside" true (Job.available_at j 2.0);
  Alcotest.(check bool) "available at release" true (Job.available_at j 1.0);
  Alcotest.(check bool) "not at deadline" false (Job.available_at j 3.0);
  Alcotest.(check bool) "covers sub" true (Job.covers j ~lo:1.5 ~hi:2.5);
  Alcotest.(check bool) "no cover over" false (Job.covers j ~lo:2.0 ~hi:3.5)

let test_job_validation () =
  let expect_invalid name f =
    match f () with
    | exception Invalid_argument _ -> ()
    | _ -> Alcotest.failf "%s: expected Invalid_argument" name
  in
  expect_invalid "deadline <= release" (fun () -> mk_job ~r:1.0 ~d:1.0 ());
  expect_invalid "zero workload" (fun () -> mk_job ~w:0.0 ());
  expect_invalid "negative value" (fun () -> mk_job ~v:(-1.0) ());
  expect_invalid "negative release" (fun () -> mk_job ~r:(-0.5) ())

let test_job_infinite_value () =
  let j = mk_job ~v:Float.infinity () in
  check_float "vd" Float.infinity (Job.value_density j)

(* ------------------------------------------------------------------ *)
(* Instance                                                            *)
(* ------------------------------------------------------------------ *)

let test_instance_sorting () =
  let jobs =
    [
      mk_job ~id:5 ~r:2.0 ~d:3.0 ();
      mk_job ~id:9 ~r:0.0 ~d:1.0 ();
      mk_job ~id:7 ~r:1.0 ~d:2.0 ();
    ]
  in
  let inst = Instance.make ~power:p3 ~machines:2 jobs in
  Alcotest.(check int) "n" 3 (Instance.n_jobs inst);
  check_float "first release" 0.0 (Instance.job inst 0).release;
  check_float "last release" 2.0 (Instance.job inst 2).release;
  Alcotest.(check (list int)) "ids are ranks" [ 0; 1; 2 ]
    (List.init 3 (fun i -> (Instance.job inst i).id));
  let lo, hi = Instance.horizon inst in
  check_float "horizon lo" 0.0 lo;
  check_float "horizon hi" 3.0 hi

let test_instance_values () =
  let inst =
    Instance.make ~power:p3 ~machines:1 [ mk_job ~v:2.0 (); mk_job ~v:3.0 () ]
  in
  check_float "total value" 5.0 (Instance.total_value inst);
  Alcotest.(check bool) "not must-finish" false (Instance.must_finish inst);
  let inf = Instance.with_values inst (fun _ -> Float.infinity) in
  Alcotest.(check bool) "must-finish" true (Instance.must_finish inf)

let test_instance_restrict () =
  let inst =
    Instance.make ~power:p3 ~machines:1
      [ mk_job ~r:0.0 ~w:1.0 (); mk_job ~r:0.5 ~d:2.0 ~w:9.0 () ]
  in
  let sub = Instance.restrict inst ~keep:(fun j -> j.workload > 5.0) in
  Alcotest.(check int) "one job" 1 (Instance.n_jobs sub);
  check_float "kept the big one" 9.0 (Instance.job sub 0).workload;
  Alcotest.(check int) "re-ranked" 0 (Instance.job sub 0).id

(* ------------------------------------------------------------------ *)
(* Timeline                                                            *)
(* ------------------------------------------------------------------ *)

let test_timeline_of_jobs () =
  let tl =
    Timeline.of_jobs
      [ mk_job ~r:0.0 ~d:2.0 (); mk_job ~r:1.0 ~d:2.0 (); mk_job ~r:1.0 ~d:4.0 () ]
  in
  Alcotest.(check int) "intervals" 3 (Timeline.n_intervals tl);
  check_float "l_0" 1.0 (Timeline.length tl 0);
  check_float "l_1" 1.0 (Timeline.length tl 1);
  check_float "l_2" 2.0 (Timeline.length tl 2)

let test_timeline_covering () =
  let tl = Timeline.of_times [ 0.0; 1.0; 2.0; 4.0 ] in
  Alcotest.(check (list int)) "full" [ 0; 1; 2 ]
    (Timeline.covering tl ~release:0.0 ~deadline:4.0);
  Alcotest.(check (list int)) "middle" [ 1 ]
    (Timeline.covering tl ~release:1.0 ~deadline:2.0);
  Alcotest.check_raises "non-boundary window"
    (Invalid_argument
       "Timeline.covering: window [0.5, 2) endpoints are not boundaries")
    (fun () -> ignore (Timeline.covering tl ~release:0.5 ~deadline:2.0))

let test_timeline_refine () =
  let tl = Timeline.of_times [ 0.0; 2.0; 4.0 ] in
  let tl', map = Timeline.refine tl 1.0 in
  Alcotest.(check int) "split adds one" 3 (Timeline.n_intervals tl');
  Alcotest.(check (list int)) "old 0 -> 0,1" [ 0; 1 ] (map 0);
  Alcotest.(check (list int)) "old 1 -> 2" [ 2 ] (map 1);
  check_float "new bound" 1.0 (Timeline.boundaries tl').(1);
  (* refining on an existing boundary is the identity *)
  let tl'', map' = Timeline.refine tl 2.0 in
  Alcotest.(check int) "no-op" 2 (Timeline.n_intervals tl'');
  Alcotest.(check (list int)) "identity map" [ 1 ] (map' 1)

let test_timeline_index_at () =
  let tl = Timeline.of_times [ 0.0; 1.0; 3.0 ] in
  Alcotest.(check (option int)) "inside first" (Some 0) (Timeline.index_at tl 0.5);
  Alcotest.(check (option int)) "boundary belongs right" (Some 1)
    (Timeline.index_at tl 1.0);
  Alcotest.(check (option int)) "before" None (Timeline.index_at tl (-0.1));
  Alcotest.(check (option int)) "at end" None (Timeline.index_at tl 3.0)

let prop_timeline_refine_preserves_measure =
  QCheck.Test.make ~name:"refine preserves interval lengths" ~count:200
    QCheck.(
      pair
        (list_of_size Gen.(2 -- 8) (float_bound_exclusive 10.0))
        (float_bound_exclusive 10.0))
    (fun (times, cut) ->
      QCheck.assume (List.length (List.sort_uniq Float.compare times) >= 2);
      let tl = Timeline.of_times times in
      let tl', map = Timeline.refine tl cut in
      List.for_all
        (fun k ->
          let parts = Ksum.sum_by (Timeline.length tl') (map k) in
          Feq.approx parts (Timeline.length tl k))
        (List.init (Timeline.n_intervals tl) Fun.id))

(* ------------------------------------------------------------------ *)
(* Schedule                                                            *)
(* ------------------------------------------------------------------ *)

let two_job_instance =
  Instance.make ~power:p3 ~machines:2
    [
      mk_job ~r:0.0 ~d:2.0 ~w:2.0 ~v:10.0 ();
      mk_job ~r:0.0 ~d:2.0 ~w:4.0 ~v:10.0 ();
    ]

let slice proc t0 t1 job speed = { Schedule.proc; t0; t1; job; speed }

let test_schedule_energy_and_cost () =
  let s =
    Schedule.make ~machines:2 ~rejected:[]
      [ slice 0 0.0 2.0 0 1.0; slice 1 0.0 2.0 1 2.0 ]
  in
  (* energy = 2*1^3 + 2*2^3 = 18 *)
  check_float "energy" 18.0 (Schedule.energy p3 s);
  check_float "work job0" 2.0 (Schedule.work_of_job s 0);
  check_float "work job1" 4.0 (Schedule.work_of_job s 1);
  let c = Schedule.cost two_job_instance s in
  check_float "no loss" 0.0 c.lost_value;
  check_float "total" 18.0 (Cost.total c);
  Alcotest.(check (list int)) "all finished" [ 0; 1 ]
    (Schedule.finished two_job_instance s)

let test_schedule_lost_value () =
  let s = Schedule.make ~machines:2 ~rejected:[ 1 ] [ slice 0 0.0 2.0 0 1.0 ] in
  let c = Schedule.cost two_job_instance s in
  check_float "lost job 1" 10.0 c.lost_value;
  Alcotest.(check (list int)) "unfinished" [ 1 ]
    (Schedule.unfinished two_job_instance s)

let test_schedule_validate_ok () =
  let s =
    Schedule.make ~machines:2 ~rejected:[]
      [ slice 0 0.0 2.0 0 1.0; slice 1 0.0 2.0 1 2.0 ]
  in
  match Schedule.validate two_job_instance s with
  | Ok () -> ()
  | Error e -> Alcotest.failf "expected valid schedule: %s" e

let test_schedule_validate_overlap () =
  let s =
    Schedule.make ~machines:2 ~rejected:[ 1 ]
      [ slice 0 0.0 1.5 0 2.0; slice 0 1.0 2.0 0 1.0 ]
  in
  match Schedule.validate two_job_instance s with
  | Ok () -> Alcotest.fail "overlap not detected"
  | Error _ -> ()

let test_schedule_validate_window () =
  let s =
    Schedule.make ~machines:2 ~rejected:[ 1 ] [ slice 0 0.0 2.5 0 1.0 ]
  in
  match Schedule.validate two_job_instance s with
  | Ok () -> Alcotest.fail "window violation not detected"
  | Error _ -> ()

let test_schedule_validate_unfinished () =
  (* job 0 only half-processed and not rejected *)
  let s =
    Schedule.make ~machines:2 ~rejected:[ 1 ] [ slice 0 0.0 1.0 0 1.0 ]
  in
  match Schedule.validate two_job_instance s with
  | Ok () -> Alcotest.fail "missing work not detected"
  | Error _ -> ()

let test_schedule_job_parallelism () =
  (* same job on two processors at once is infeasible *)
  let s =
    Schedule.make ~machines:2 ~rejected:[ 1 ]
      [ slice 0 0.0 1.0 0 1.0; slice 1 0.5 1.5 0 1.0 ]
  in
  match Schedule.validate two_job_instance s with
  | Ok () -> Alcotest.fail "job parallelism not detected"
  | Error _ -> ()

let test_schedule_profiles () =
  let s =
    Schedule.make ~machines:2 ~rejected:[]
      [ slice 0 1.0 2.0 0 1.0; slice 0 0.0 1.0 1 2.0; slice 1 0.0 2.0 1 1.0 ]
  in
  Alcotest.(check int) "proc0 has two runs" 2
    (List.length (Schedule.speed_profile s ~proc:0));
  Alcotest.(check int) "job1 busy twice" 2
    (List.length (Schedule.busy_intervals s ~job:1))

let test_schedule_speed_at () =
  let s =
    Schedule.make ~machines:2 ~rejected:[]
      [ slice 0 0.0 1.0 0 1.5; slice 0 1.0 2.0 1 2.5 ]
  in
  check_float "inside first" 1.5 (Schedule.speed_at s ~proc:0 0.5);
  check_float "boundary takes incoming" 2.5 (Schedule.speed_at s ~proc:0 1.0);
  check_float "idle" 0.0 (Schedule.speed_at s ~proc:0 3.0);
  check_float "other processor idle" 0.0 (Schedule.speed_at s ~proc:1 0.5);
  Alcotest.(check (option int)) "running job" (Some 1)
    (Schedule.running_at s ~proc:0 1.5);
  Alcotest.(check (option int)) "nobody" None (Schedule.running_at s ~proc:1 0.5)

let test_schedule_drops_null_slices () =
  let s =
    Schedule.make ~machines:1 ~rejected:[] [ slice 0 0.0 1.0 0 0.0 ]
  in
  Alcotest.(check int) "zero-speed dropped" 0 (List.length s.slices)

(* ------------------------------------------------------------------ *)
(* Io                                                                  *)
(* ------------------------------------------------------------------ *)

let test_io_roundtrip () =
  let inst =
    Instance.make ~power:p3 ~machines:3
      [
        mk_job ~id:0 ~r:0.25 ~d:1.75 ~w:2.5 ~v:7.125 ();
        mk_job ~id:1 ~r:1.0 ~d:9.0 ~w:0.125 ~v:Float.infinity ();
      ]
  in
  let inst' = Io.of_string (Io.to_string inst) in
  Alcotest.(check int) "n" (Instance.n_jobs inst) (Instance.n_jobs inst');
  Alcotest.(check int) "machines" inst.machines inst'.machines;
  check_float "alpha" (Power.alpha inst.power) (Power.alpha inst'.power);
  List.iter
    (fun i ->
      let a = Instance.job inst i and b = Instance.job inst' i in
      check_float "release" a.release b.release;
      check_float "deadline" a.deadline b.deadline;
      check_float "workload" a.workload b.workload;
      Alcotest.(check bool) "value" true (a.value = b.value))
    [ 0; 1 ]

let test_io_parse_format () =
  let text =
    "# a comment\n\nalpha 2.5\nmachines 2\njob 0 1 1.5 3.25\njob 0.5 2 1 inf\n"
  in
  let inst = Io.of_string text in
  Alcotest.(check int) "jobs" 2 (Instance.n_jobs inst);
  check_float "value" 3.25 (Instance.job inst 0).value;
  Alcotest.(check bool) "inf value" true
    (Float.equal (Instance.job inst 1).value Float.infinity)

let test_io_errors () =
  let expect_failure name text =
    match Io.of_string text with
    | exception Failure _ -> ()
    | _ -> Alcotest.failf "%s: expected Failure" name
  in
  expect_failure "missing alpha" "machines 1\njob 0 1 1 1\n";
  expect_failure "missing machines" "alpha 2\njob 0 1 1 1\n";
  expect_failure "no jobs" "alpha 2\nmachines 1\n";
  expect_failure "garbage line" "alpha 2\nmachines 1\nxyzzy\n";
  expect_failure "bad float" "alpha 2\nmachines 1\njob 0 1 X 1\n"

let test_io_file_roundtrip () =
  let inst =
    Instance.make ~power:p2 ~machines:1 [ mk_job ~r:0.0 ~d:1.0 ~w:1.0 ~v:2.0 () ]
  in
  let path = Filename.temp_file "speedscale" ".inst" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Io.save path inst;
      let inst' = Io.load path in
      check_float "workload survives disk" 1.0 (Instance.job inst' 0).workload)

(* The parser must never crash with anything other than Failure /
   Invalid_argument, no matter the bytes. *)
let prop_io_fuzz_no_crash =
  QCheck.Test.make ~name:"Io.of_string total on garbage" ~count:300
    QCheck.(string_gen Gen.printable)
    (fun s ->
      match Io.of_string s with
      | _ -> true
      | exception (Failure _ | Invalid_argument _) -> true)

let prop_io_roundtrip_random =
  QCheck.Test.make ~name:"Io roundtrip on random instances" ~count:100
    QCheck.(
      pair (int_range 1 4)
        (list_of_size Gen.(1 -- 8)
           (quad
              (make Gen.(float_range 0.0 9.0))
              (make Gen.(float_range 0.1 4.0))
              (make Gen.(float_range 0.1 3.0))
              (make Gen.(float_range 0.0 20.0)))))
    (fun (machines, jobs) ->
      let inst =
        Instance.make ~power:p2 ~machines
          (List.mapi
             (fun i (r, span, w, v) ->
               Job.make ~id:i ~release:r ~deadline:(r +. span) ~workload:w
                 ~value:v)
             jobs)
      in
      let inst' = Io.of_string (Io.to_string inst) in
      Instance.n_jobs inst = Instance.n_jobs inst'
      && List.for_all
           (fun i ->
             let a = Instance.job inst i and b = Instance.job inst' i in
             a.release = b.release && a.deadline = b.deadline
             && a.workload = b.workload && a.value = b.value)
           (List.init (Instance.n_jobs inst) Fun.id))

let prop_instance_with_values_preserves_shape =
  QCheck.Test.make ~name:"with_values keeps windows and workloads" ~count:100
    QCheck.(
      list_of_size Gen.(1 -- 8)
        (triple
           (make Gen.(float_range 0.0 9.0))
           (make Gen.(float_range 0.1 4.0))
           (make Gen.(float_range 0.1 3.0))))
    (fun jobs ->
      let inst =
        Instance.make ~power:p2 ~machines:2
          (List.mapi
             (fun i (r, span, w) ->
               Job.make ~id:i ~release:r ~deadline:(r +. span) ~workload:w
                 ~value:1.0)
             jobs)
      in
      let inst' = Instance.with_values inst (fun j -> 2.0 *. j.workload) in
      List.for_all
        (fun i ->
          let a = Instance.job inst i and b = Instance.job inst' i in
          Float.equal a.release b.release
          && Float.equal a.workload b.workload
          && Float.equal b.value (2.0 *. b.workload))
        (List.init (Instance.n_jobs inst) Fun.id))

let () =
  let q = QCheck_alcotest.to_alcotest in
  Alcotest.run "model"
    [
      ( "power",
        [
          Alcotest.test_case "basics" `Quick test_power_basics;
          Alcotest.test_case "inverse" `Quick test_power_inverse;
          Alcotest.test_case "constants" `Quick test_power_constants;
          Alcotest.test_case "invalid" `Quick test_power_invalid;
          q prop_power_convexity;
        ] );
      ( "job",
        [
          Alcotest.test_case "accessors" `Quick test_job_accessors;
          Alcotest.test_case "validation" `Quick test_job_validation;
          Alcotest.test_case "infinite value" `Quick test_job_infinite_value;
        ] );
      ( "instance",
        [
          Alcotest.test_case "sorting" `Quick test_instance_sorting;
          Alcotest.test_case "values" `Quick test_instance_values;
          Alcotest.test_case "restrict" `Quick test_instance_restrict;
        ] );
      ( "timeline",
        [
          Alcotest.test_case "of_jobs" `Quick test_timeline_of_jobs;
          Alcotest.test_case "covering" `Quick test_timeline_covering;
          Alcotest.test_case "refine" `Quick test_timeline_refine;
          Alcotest.test_case "index_at" `Quick test_timeline_index_at;
          q prop_timeline_refine_preserves_measure;
        ] );
      ( "io",
        [
          Alcotest.test_case "roundtrip" `Quick test_io_roundtrip;
          Alcotest.test_case "parse format" `Quick test_io_parse_format;
          Alcotest.test_case "errors" `Quick test_io_errors;
          Alcotest.test_case "file roundtrip" `Quick test_io_file_roundtrip;
          q prop_io_fuzz_no_crash;
          q prop_io_roundtrip_random;
          q prop_instance_with_values_preserves_shape;
        ] );
      ( "schedule",
        [
          Alcotest.test_case "energy and cost" `Quick test_schedule_energy_and_cost;
          Alcotest.test_case "lost value" `Quick test_schedule_lost_value;
          Alcotest.test_case "validate ok" `Quick test_schedule_validate_ok;
          Alcotest.test_case "overlap" `Quick test_schedule_validate_overlap;
          Alcotest.test_case "window" `Quick test_schedule_validate_window;
          Alcotest.test_case "unfinished" `Quick test_schedule_validate_unfinished;
          Alcotest.test_case "job parallelism" `Quick test_schedule_job_parallelism;
          Alcotest.test_case "profiles" `Quick test_schedule_profiles;
          Alcotest.test_case "speed_at" `Quick test_schedule_speed_at;
          Alcotest.test_case "null slices" `Quick test_schedule_drops_null_slices;
        ] );
    ]
