(* Tests for PD, the paper's primal-dual online algorithm.  The headline
   property is Theorem 3's certificate: cost(PD) <= alpha^alpha * g(lambda)
   on every instance, checked here on randomized workloads across alpha and
   machine counts. *)

open Speedscale_model
open Speedscale_core
open Speedscale_single

let check_float = Alcotest.(check (float 1e-6))
let p2 = Power.make 2.0
let p3 = Power.make 3.0

let mk_job ~id ~r ~d ~w ?(v = Float.infinity) () =
  Job.make ~id ~release:r ~deadline:d ~workload:w ~value:v

let instance ?(power = p2) ?(machines = 1) jobs =
  Instance.make ~power ~machines jobs

(* ------------------------------------------------------------------ *)
(* Single-job behaviour                                                 *)
(* ------------------------------------------------------------------ *)

let test_single_job_accepted () =
  let inst = instance [ mk_job ~id:0 ~r:0.0 ~d:2.0 ~w:4.0 ~v:100.0 () ] in
  let r = Pd.run inst in
  Alcotest.(check (list int)) "accepted" [ 0 ] r.accepted;
  (* the only schedule is constant density 2 on [0,2] *)
  check_float "energy" 8.0 r.cost.energy;
  check_float "no loss" 0.0 r.cost.lost_value;
  (* lambda = delta * w * P'(density) = 1/2 * 4 * 2*2 = 8 *)
  check_float "multiplier" 8.0 r.lambda.(0);
  match Schedule.validate inst r.schedule with
  | Ok () -> ()
  | Error e -> Alcotest.failf "invalid schedule: %s" e

let test_single_job_rejected () =
  (* density 2; threshold value for acceptance: v = delta w P'(2) = 8 *)
  let inst = instance [ mk_job ~id:0 ~r:0.0 ~d:2.0 ~w:4.0 ~v:7.9 () ] in
  let r = Pd.run inst in
  Alcotest.(check (list int)) "rejected" [ 0 ] r.rejected;
  check_float "cost is lost value" 7.9 (Cost.total r.cost);
  check_float "lambda = v" 7.9 r.lambda.(0)

let test_single_job_boundary_value () =
  (* value slightly above the threshold 8: accept *)
  let inst = instance [ mk_job ~id:0 ~r:0.0 ~d:2.0 ~w:4.0 ~v:8.1 () ] in
  let r = Pd.run inst in
  Alcotest.(check (list int)) "accepted at boundary" [ 0 ] r.accepted

let test_rejection_threshold_matches_module () =
  let j = mk_job ~id:0 ~r:0.0 ~d:2.0 ~w:4.0 ~v:7.0 () in
  (* PD accepts iff density <= threshold_speed *)
  let threshold = Rejection.threshold_speed p2 j in
  (* alpha=2, delta=1/2: s = v/(delta alpha w) = 7/4 *)
  check_float "threshold speed" 1.75 threshold;
  (* equals CLL's closed form with delta = delta_star *)
  check_float "CLL agreement" (Cll.threshold_speed p2 j) threshold

let test_rejection_threshold_alpha3 () =
  let j = mk_job ~id:0 ~r:0.0 ~d:1.0 ~w:2.0 ~v:5.0 () in
  check_float "CLL agreement (alpha=3)"
    (Cll.threshold_speed p3 j)
    (Rejection.threshold_speed p3 j)

(* ------------------------------------------------------------------ *)
(* Multi-job structure                                                  *)
(* ------------------------------------------------------------------ *)

let test_two_jobs_two_processors () =
  let inst =
    instance ~machines:2
      [
        mk_job ~id:0 ~r:0.0 ~d:1.0 ~w:3.0 ~v:1000.0 ();
        mk_job ~id:1 ~r:0.0 ~d:1.0 ~w:3.0 ~v:1000.0 ();
      ]
  in
  let r = Pd.run inst in
  Alcotest.(check int) "both accepted" 2 (List.length r.accepted);
  (* each job runs on its own processor at speed 3 *)
  check_float "energy 2*9" 18.0 r.cost.energy

let test_pd_keeps_old_distribution () =
  (* Figure 3's structural claim: when a second job arrives, PD does not
     redistribute the first job's committed work. *)
  let pd = Pd.create ~power:p2 ~machines:1 () in
  let j0 = mk_job ~id:0 ~r:0.0 ~d:2.0 ~w:2.0 ~v:1000.0 () in
  let d0 = Pd.arrive pd j0 in
  Alcotest.(check bool) "j0 accepted" true d0.accepted;
  let j1 = mk_job ~id:1 ~r:0.0 ~d:1.0 ~w:1.0 ~v:1000.0 () in
  let _ = Pd.arrive pd j1 in
  (* j0 committed 1 unit to [0,1) and 1 unit to [1,2) — unchanged by j1 *)
  let loads = Pd.interval_loads pd in
  let load_of k id =
    Option.value ~default:0.0 (List.assoc_opt id loads.(k))
  in
  check_float "j0 in [0,1)" 1.0 (load_of 0 0);
  check_float "j0 in [1,2)" 1.0 (load_of 1 0);
  (* j1 went entirely into [0,1) *)
  check_float "j1 in [0,1)" 1.0 (load_of 0 1);
  check_float "j1 absent from [1,2)" 0.0 (load_of 1 1)

let test_pd_differs_from_oa () =
  (* same instance: OA redistributes, ending with different speeds *)
  let inst =
    instance
      [
        mk_job ~id:0 ~r:0.0 ~d:2.0 ~w:2.0 ~v:1000.0 ();
        mk_job ~id:1 ~r:0.0 ~d:1.0 ~w:1.0 ~v:1000.0 ();
      ]
  in
  let inst_inf = Instance.with_values inst (fun _ -> Float.infinity) in
  let pd_energy = (Pd.run inst).cost.energy in
  let oa_energy = Oa.energy inst_inf in
  (* PD: speeds 2 on [0,1) and 1 on [1,2): energy 5.
     OA: replan at arrival of j1 moves part of j0 right: 1.5 on [0,1)
     carrying j1 (1.0) + j0 (0.5), then 1.5 on [1,2): energy 4.5. *)
  check_float "PD energy" 5.0 pd_energy;
  Alcotest.(check (float 1e-3)) "OA energy" 4.5 oa_energy;
  Alcotest.(check bool) "PD more conservative here" true
    (pd_energy > oa_energy)

let test_refinement_splits_proportionally () =
  let pd = Pd.create ~power:p2 ~machines:1 () in
  let j0 = mk_job ~id:0 ~r:0.0 ~d:4.0 ~w:4.0 ~v:1000.0 () in
  ignore (Pd.arrive pd j0);
  (* j0: 4 work over [0,4) uniformly *)
  let j1 = mk_job ~id:1 ~r:1.0 ~d:2.0 ~w:0.1 ~v:1000.0 () in
  ignore (Pd.arrive pd j1);
  let b = Pd.boundaries pd in
  Alcotest.(check int) "boundaries 0,1,2,4" 4 (Array.length b);
  let loads = Pd.interval_loads pd in
  let load_of k id = Option.value ~default:0.0 (List.assoc_opt id loads.(k)) in
  check_float "j0 in [0,1)" 1.0 (load_of 0 0);
  check_float "j0 in [1,2)" 1.0 (load_of 1 0);
  check_float "j0 in [2,4)" 2.0 (load_of 2 0)

let test_arrival_order_enforced () =
  let pd = Pd.create ~power:p2 ~machines:1 () in
  ignore (Pd.arrive pd (mk_job ~id:0 ~r:5.0 ~d:6.0 ~w:1.0 ()));
  Alcotest.check_raises "out of order"
    (Invalid_argument "Pd.arrive: jobs must arrive in release order")
    (fun () -> ignore (Pd.arrive pd (mk_job ~id:1 ~r:1.0 ~d:6.0 ~w:1.0 ())));
  Alcotest.check_raises "duplicate id"
    (Invalid_argument "Pd.arrive: duplicate job id") (fun () ->
      ignore (Pd.arrive pd (mk_job ~id:0 ~r:6.0 ~d:7.0 ~w:1.0 ())))

(* ------------------------------------------------------------------ *)
(* Randomized instances                                                 *)
(* ------------------------------------------------------------------ *)

let gen_setup =
  QCheck.Gen.(
    let* alpha = float_range 1.3 3.5 in
    let* machines = 1 -- 4 in
    let* n = 1 -- 10 in
    let* jobs =
      list_size (return n)
        (let* r = float_range 0.0 8.0 in
         let* span = float_range 0.3 4.0 in
         let* w = float_range 0.2 3.0 in
         let* v = float_range 0.05 25.0 in
         return (r, r +. span, w, v))
    in
    return (alpha, machines, jobs))

let print_setup (alpha, m, jobs) =
  Printf.sprintf "alpha=%g m=%d jobs=[%s]" alpha m
    (String.concat ";"
       (List.map
          (fun (r, d, w, v) -> Printf.sprintf "(%g,%g,%g,%g)" r d w v)
          jobs))

let arb_setup = QCheck.make gen_setup ~print:print_setup

let instance_of ?(must_finish = false) (alpha, machines, jobs) =
  Instance.make ~power:(Power.make alpha) ~machines
    (List.mapi
       (fun i (r, d, w, v) ->
         mk_job ~id:i ~r ~d ~w ~v:(if must_finish then Float.infinity else v)
           ())
       jobs)

let prop_theorem3_certificate =
  QCheck.Test.make
    ~name:"Theorem 3: cost(PD) <= alpha^alpha * g(lambda)" ~count:400
    arb_setup (fun setup ->
      let inst = instance_of setup in
      let r = Pd.run inst in
      let lhs = Cost.total r.cost in
      let rhs = r.guarantee *. r.dual_bound in
      if lhs > rhs +. (1e-6 *. (1.0 +. Float.abs rhs)) then
        QCheck.Test.fail_reportf "cost %.9g > %.9g = alpha^alpha * g" lhs rhs
      else true)

let prop_pd_schedule_feasible =
  QCheck.Test.make ~name:"PD schedule is feasible" ~count:200 arb_setup
    (fun setup ->
      let inst = instance_of setup in
      let r = Pd.run inst in
      match Schedule.validate inst r.schedule with
      | Ok () -> true
      | Error e -> QCheck.Test.fail_reportf "infeasible: %s" e)

let prop_pd_lambda_bounded_by_value =
  QCheck.Test.make ~name:"multipliers never exceed values" ~count:200
    arb_setup (fun setup ->
      let inst = instance_of setup in
      let r = Pd.run inst in
      Array.for_all2
        (fun l (j : Job.t) -> l <= j.value +. 1e-9 && l >= -1e-12)
        r.lambda inst.jobs)

let prop_pd_dual_positive =
  QCheck.Test.make ~name:"dual bound is positive on nonempty instances"
    ~count:200 arb_setup (fun setup ->
      let inst = instance_of setup in
      let r = Pd.run inst in
      r.dual_bound > 0.0)

let prop_pd_waterfilling_equalized =
  QCheck.Test.make
    ~name:"accepted job speed equals planned speed in every used interval"
    ~count:150 arb_setup (fun setup ->
      let inst = instance_of setup in
      let pd =
        Pd.create ~power:inst.power ~machines:inst.machines ()
      in
      let ok = ref true in
      Array.iter
        (fun (j : Job.t) ->
          let d = Pd.arrive pd j in
          if d.accepted then begin
            let loads = Pd.interval_loads pd in
            let bounds = Pd.boundaries pd in
            List.iter
              (fun (k, _) ->
                let len = bounds.(k + 1) -. bounds.(k) in
                let chen =
                  Speedscale_chen.Chen.build ~machines:inst.machines
                    ~length:len loads.(k)
                in
                let s = Speedscale_chen.Chen.speed_of_job chen j.id in
                if
                  Float.abs (s -. d.planned_speed)
                  > 1e-5 *. (1.0 +. d.planned_speed)
                then ok := false)
              d.assignment
          end)
        inst.jobs;
      !ok)

let prop_pd_energy_only_brackets_yds =
  QCheck.Test.make
    ~name:"infinite values: YDS <= PD <= alpha^alpha YDS (m=1)" ~count:100
    arb_setup (fun (alpha, _m, jobs) ->
      let inst = instance_of ~must_finish:true (alpha, 1, jobs) in
      let r = Pd.run inst in
      let power = inst.Instance.power in
      let yds = Yds.energy power (Array.to_list inst.jobs) in
      let bound = Power.competitive_bound power in
      Cost.total r.cost >= yds -. (1e-6 *. (1.0 +. yds))
      && Cost.total r.cost <= (bound *. yds) +. 1e-6)

let prop_pd_total_work_conserved =
  QCheck.Test.make ~name:"accepted jobs receive exactly their workload"
    ~count:150 arb_setup (fun setup ->
      let inst = instance_of setup in
      let r = Pd.run inst in
      List.for_all
        (fun id ->
          let j = Instance.job inst id in
          Float.abs (Schedule.work_of_job r.schedule id -. j.workload)
          <= 1e-6 *. (1.0 +. j.workload))
        r.accepted
      && List.for_all
           (fun id -> Float.equal (Schedule.work_of_job r.schedule id) 0.0)
           r.rejected)

(* ------------------------------------------------------------------ *)
(* Optimized vs reference arrival path                                  *)
(* ------------------------------------------------------------------ *)

(* The breakpoint-walk solver in Pd.arrive must be a pure speedup: on the
   alpha/machine grid the issue singles out, every decision, multiplier
   and resulting schedule has to match the retained bisection oracle. *)
let gen_equiv_setup =
  QCheck.Gen.(
    let* alpha = oneofl [ 1.5; 2.0; 3.0 ] in
    let* machines = oneofl [ 1; 4 ] in
    let* n = 1 -- 12 in
    let* jobs =
      list_size (return n)
        (let* r = float_range 0.0 8.0 in
         let* span = float_range 0.3 4.0 in
         let* w = float_range 0.2 3.0 in
         let* v = float_range 0.05 25.0 in
         return (r, r +. span, w, v))
    in
    return (alpha, machines, jobs))

let arb_equiv_setup = QCheck.make gen_equiv_setup ~print:print_setup

let prop_pd_paths_equivalent =
  QCheck.Test.make
    ~name:
      "breakpoint walk = reference bisection (decisions, multipliers, cost)"
    ~count:200 arb_equiv_setup (fun setup ->
      let inst = instance_of setup in
      let fast = Pd.create ~power:inst.power ~machines:inst.machines () in
      let slow = Pd.create ~power:inst.power ~machines:inst.machines () in
      let gcd =
        Pd.create ~gc:true ~power:inst.power ~machines:inst.machines ()
      in
      Array.iter
        (fun (j : Job.t) ->
          let df = Pd.arrive fast j in
          let ds = Pd.arrive_reference slow j in
          let dg = Pd.arrive gcd j in
          if df.accepted <> ds.accepted then
            QCheck.Test.fail_reportf
              "job %d: accepted %b (walk) vs %b (reference)" j.id
              df.accepted ds.accepted;
          if
            Float.abs (df.lambda -. ds.lambda)
            > 1e-9 *. (1.0 +. Float.abs ds.lambda)
          then
            QCheck.Test.fail_reportf "job %d: lambda %.17g vs %.17g" j.id
              df.lambda ds.lambda;
          (* flushing wholly-past state must be invisible: the gc'd walk
             makes bit-identical decisions, not merely close ones *)
          if dg.accepted <> df.accepted || not (Float.equal dg.lambda df.lambda)
          then
            QCheck.Test.fail_reportf
              "job %d: gc drifted (accepted %b/%b, lambda %.17g vs %.17g)"
              j.id dg.accepted df.accepted dg.lambda df.lambda)
        inst.jobs;
      let cost_of t = Cost.total (Schedule.cost inst (Pd.schedule t)) in
      let cf = cost_of fast and cs = cost_of slow and cg = cost_of gcd in
      if Float.abs (cf -. cs) > 1e-6 *. (1.0 +. Float.abs cs) then
        QCheck.Test.fail_reportf "cost %.12g (walk) vs %.12g (reference)" cf
          cs
      else if not (Float.equal cg cf) then
        QCheck.Test.fail_reportf "cost %.17g (gc) vs %.17g (no gc)" cg cf
      else begin
        (* Theorem 3's certificate, re-checked on the optimized path *)
        let rhs = Power.competitive_bound inst.power *. Pd.certificate fast in
        if cf > rhs +. (1e-6 *. (1.0 +. Float.abs rhs)) then
          QCheck.Test.fail_reportf "cost %.9g > %.9g = alpha^alpha * g" cf rhs
        else true
      end)

(* Long streams with mixed tight/loose deadlines: enough arrivals that GC
   has flushed most of the timeline mid-property, on windows ragged
   enough to exercise the frontier logic.  The gc'd breakpoint walk must
   still match the reference bisection decision for decision, and the gc
   and full states must realize equal-cost schedules. *)
let prop_pd_gc_long_stream_oracle =
  QCheck.Test.make ~name:"gc long stream: walk = reference, flush invisible"
    ~count:3
    QCheck.(
      make
        ~print:(fun (alpha, machines, seed) ->
          Printf.sprintf "alpha=%g m=%d seed=%d" alpha machines seed)
        Gen.(
          tup3 (oneofl [ 1.5; 2.0; 3.0 ]) (oneofl [ 1; 4 ]) (int_range 0 1000)))
    (fun (alpha, machines, seed) ->
      let n = 5_000 in
      let power = Power.make alpha in
      let st = Random.State.make [| 0x5eed; seed |] in
      let jobs =
        let t = ref 0.0 in
        List.init n (fun i ->
            t := !t +. Random.State.float st 0.5;
            let w = 0.2 +. Random.State.float st 2.0 in
            let span =
              if Random.State.bool st then 0.2 +. Random.State.float st 1.0
              else 5.0 +. Random.State.float st 15.0
            in
            let v = 0.05 +. Random.State.float st 25.0 in
            Job.make ~id:i ~release:!t ~deadline:(!t +. span) ~workload:w
              ~value:v)
      in
      let inst = Instance.make ~power ~machines jobs in
      let gc_fast = Pd.create ~gc:true ~power ~machines () in
      let gc_ref = Pd.create ~gc:true ~power ~machines () in
      let plain = Pd.create ~power ~machines () in
      Array.iter
        (fun (j : Job.t) ->
          let df = Pd.arrive gc_fast j in
          let dr = Pd.arrive_reference gc_ref j in
          let dp = Pd.arrive plain j in
          if df.accepted <> dr.accepted then
            QCheck.Test.fail_reportf
              "job %d: accepted %b (walk) vs %b (reference)" j.id df.accepted
              dr.accepted;
          if
            Float.abs (df.lambda -. dr.lambda)
            > 1e-9 *. (1.0 +. Float.abs dr.lambda)
          then
            QCheck.Test.fail_reportf "job %d: lambda %.17g vs %.17g" j.id
              df.lambda dr.lambda;
          if dp.accepted <> df.accepted || not (Float.equal dp.lambda df.lambda)
          then
            QCheck.Test.fail_reportf "job %d: gc drifted from full state" j.id)
        inst.jobs;
      let m = Pd.mem gc_fast in
      if m.flushed_intervals = 0 then
        QCheck.Test.fail_reportf "GC never fired on a %d-arrival stream" n;
      if m.max_live_intervals >= m.flushed_intervals then
        QCheck.Test.fail_reportf
          "residency not bounded: %d live high-water vs %d flushed"
          m.max_live_intervals m.flushed_intervals;
      let cost_of t = Cost.total (Schedule.cost inst (Pd.schedule t)) in
      let cg = cost_of gc_fast and cp = cost_of plain in
      if not (Float.equal cg cp) then
        QCheck.Test.fail_reportf "cost %.17g (gc) vs %.17g (full)" cg cp
      else true)

(* Satellite invariant for the dup-id/outcome tables: a stream of jobs
   whose windows expire before the next arrival must keep every residency
   gauge flat — O(1) live intervals and table entries across 10^4
   arrivals, everything else flushed/evicted. *)
let test_gc_flat_residency_on_expired_stream () =
  let n = 10_000 in
  let pd = Pd.create ~gc:true ~power:p2 ~machines:2 () in
  for i = 0 to n - 1 do
    let r = float_of_int i in
    ignore
      (Pd.arrive pd
         (mk_job ~id:i ~r ~d:(r +. 0.5) ~w:1.0 ~v:50.0 ()))
  done;
  let m = Pd.mem pd in
  Alcotest.(check bool) "live intervals flat" true (m.live_intervals <= 4);
  Alcotest.(check bool) "live high-water flat" true (m.max_live_intervals <= 4);
  Alcotest.(check bool) "table entries flat" true (m.table_entries <= 8);
  Alcotest.(check bool) "table high-water flat" true (m.max_table_entries <= 8);
  Alcotest.(check bool) "everything flushed" true
    (m.flushed_intervals >= n - 4);
  Alcotest.(check bool) "everything evicted" true (m.evicted_jobs >= n - 4);
  (* flushing loses nothing: every accepted job still has its one slice
     in the assembled schedule *)
  Alcotest.(check int) "schedule covers the whole history" n
    (List.length (Pd.schedule pd).Schedule.slices)

(* ------------------------------------------------------------------ *)
(* Tline — the order-statistics tree under the PD timeline               *)
(* ------------------------------------------------------------------ *)

(* Model-based check against a sorted association list.  Keys are drawn
   from a small pool so adds collide and removes hit real keys. *)
let prop_tline_matches_sorted_assoc_model =
  let apply_model ops =
    List.fold_left
      (fun m op ->
        match op with
        | `Add (k, v) ->
          List.sort compare ((k, v) :: List.remove_assoc k m)
        | `Remove k -> List.remove_assoc k m)
      [] ops
  in
  let apply_tline ops =
    List.fold_left
      (fun t op ->
        match op with
        | `Add (k, v) -> Speedscale_core.Tline.add k v t
        | `Remove k -> Speedscale_core.Tline.remove k t)
      Speedscale_core.Tline.empty ops
  in
  QCheck.Test.make ~name:"Tline = sorted assoc list (all queries)" ~count:300
    QCheck.(
      list_of_size
        Gen.(1 -- 60)
        (make
           ~print:(function
             | `Add (k, v) -> Printf.sprintf "add %g %d" k v
             | `Remove k -> Printf.sprintf "remove %g" k)
           Gen.(
             let key = map (fun i -> float_of_int i /. 4.0) (-8 -- 20) in
             oneof
               [
                 map2 (fun k v -> `Add (k, v)) key (0 -- 99);
                 map (fun k -> `Remove k) key;
               ])))
    (fun ops ->
      let open Speedscale_core.Tline in
      let m = apply_model ops in
      let t = apply_tline ops in
      let fail fmt = QCheck.Test.fail_reportf fmt in
      if cardinal t <> List.length m then
        fail "cardinal %d vs %d" (cardinal t) (List.length m);
      if is_empty t <> (m = []) then fail "is_empty disagrees";
      if bindings t <> m then fail "bindings disagree";
      if fold (fun k v acc -> (k, v) :: acc) t [] <> List.rev m then
        fail "fold order disagrees";
      let probes =
        List.sort_uniq compare
          (List.concat_map
             (function `Add (k, _) | `Remove k -> [ k; k +. 0.1; k -. 0.1 ])
             ops)
      in
      List.iter
        (fun q ->
          if find_opt q t <> List.assoc_opt q m then fail "find_opt %g" q;
          if rank q t <> List.length (List.filter (fun (k, _) -> k < q) m)
          then fail "rank %g" q;
          let last_leq =
            List.fold_left
              (fun acc (k, v) -> if k <= q then Some (k, v) else acc)
              None m
          in
          if find_last_leq q t <> last_leq then fail "find_last_leq %g" q;
          if
            find_first_geq q t
            <> List.find_opt (fun (k, _) -> k >= q) m
          then fail "find_first_geq %g" q)
        probes;
      (match (min_binding_opt t, m) with
      | None, [] -> ()
      | Some b, first :: _ when b = first -> ()
      | _ -> fail "min_binding disagrees");
      (match (max_binding_opt t, List.rev m) with
      | None, [] -> ()
      | Some b, last :: _ when b = last -> ()
      | _ -> fail "max_binding disagrees");
      List.iter
        (fun lo ->
          List.iter
            (fun hi ->
              if
                bindings_range ~lo ~hi t
                <> List.filter (fun (k, _) -> k >= lo && k < hi) m
              then fail "bindings_range %g %g" lo hi)
            probes)
        probes;
      true)

let test_near_duplicate_boundary () =
  let pd = Pd.create ~power:p2 ~machines:1 () in
  let d0 = Pd.arrive pd (mk_job ~id:0 ~r:1.0 ~d:3.0 ~w:1.0 ~v:100.0 ()) in
  Alcotest.(check bool) "j0 accepted" true d0.accepted;
  (* a deadline within the boundary tolerance of an existing boundary
     snaps to it instead of splitting off a sliver interval *)
  let d1 =
    Pd.arrive pd (mk_job ~id:1 ~r:1.0 ~d:(3.0 +. 1e-13) ~w:0.5 ~v:100.0 ())
  in
  Alcotest.(check bool) "j1 accepted" true d1.accepted;
  let b = Pd.boundaries pd in
  Alcotest.(check int) "no sliver interval" 2 (Array.length b);
  Array.iteri
    (fun i bi ->
      if i > 0 then
        Alcotest.(check bool) "boundaries well separated" true
          (bi -. b.(i - 1) > 1e-9 *. (1.0 +. Float.abs bi)))
    b;
  (* a window that collapses entirely: finite value -> clean rejection
     at lambda = v instead of water-filling a zero-length interval *)
  let d2 =
    Pd.arrive pd (mk_job ~id:2 ~r:3.0 ~d:(3.0 +. 1e-13) ~w:1.0 ~v:5.0 ())
  in
  Alcotest.(check bool) "degenerate window rejected" false d2.accepted;
  check_float "lambda = value" 5.0 d2.lambda;
  (* ... but a job that must finish cannot be silently dropped *)
  match Pd.arrive pd (mk_job ~id:3 ~r:3.0 ~d:(3.0 +. 1e-13) ~w:1.0 ()) with
  | exception Failure _ -> ()
  | d -> Alcotest.failf "expected Failure, got accepted=%b" d.accepted

let test_arrival_stats_observer () =
  let tick = ref 0.0 in
  let clock () =
    tick := !tick +. 1.0;
    !tick
  in
  let pd = Pd.create ~clock ~power:p2 ~machines:2 () in
  let seen = ref [] in
  Pd.set_observer pd (Some (fun s -> seen := s :: !seen));
  ignore (Pd.arrive pd (mk_job ~id:0 ~r:0.0 ~d:2.0 ~w:1.0 ~v:100.0 ()));
  ignore (Pd.arrive pd (mk_job ~id:1 ~r:0.5 ~d:1.5 ~w:1.0 ~v:100.0 ()));
  Alcotest.(check int) "observer fired per arrival" 2 (List.length !seen);
  List.iter
    (fun (s : Pd.arrival_stats) ->
      Alcotest.(check bool) "probes counted" true (s.probes > 0);
      Alcotest.(check bool) "intervals counted" true (s.intervals >= 1);
      Alcotest.(check bool) "breakpoints counted" true (s.breakpoints > 0);
      Alcotest.(check bool) "clocked wall time" true (s.wall_s > 0.0))
    !seen;
  let st = Pd.stats pd in
  Alcotest.(check int) "arrivals counted" 2 st.arrivals;
  Alcotest.(check int) "probe totals add up" st.probes
    (List.fold_left (fun acc (s : Pd.arrival_stats) -> acc + s.probes) 0 !seen);
  (* the reference path reports probes but no breakpoints, and without a
     clock the wall time stays at zero *)
  let refpd = Pd.create ~power:p2 ~machines:1 () in
  let last = ref None in
  Pd.set_observer refpd (Some (fun s -> last := Some s));
  ignore
    (Pd.arrive_reference refpd (mk_job ~id:0 ~r:0.0 ~d:1.0 ~w:1.0 ~v:100.0 ()));
  match !last with
  | Some (s : Pd.arrival_stats) ->
    Alcotest.(check int) "reference breakpoints" 0 s.breakpoints;
    Alcotest.(check bool) "reference probes counted" true (s.probes > 0);
    Alcotest.(check bool) "no clock, no wall" true (Float.equal s.wall_s 0.0)
  | None -> Alcotest.fail "observer not called on reference path"

(* ------------------------------------------------------------------ *)
(* Section 4 analysis machinery                                         *)
(* ------------------------------------------------------------------ *)

let prop_analysis_invariants =
  QCheck.Test.make
    ~name:"Section 4 machinery: traces, Prop 7/8, Lemmas 9-11, Theorem 3"
    ~count:250 arb_setup (fun setup ->
      let inst = instance_of setup in
      let r = Pd.run inst in
      let a = Analysis.analyze inst r in
      let checks =
        [
          ("traces disjoint", a.traces_disjoint);
          ("prop7", a.prop7_ok);
          ("prop8b", a.prop8b_ok);
          ("lemma9", a.lemma9_ok);
          ("lemma10", a.lemma10_ok);
          ("lemma11", a.lemma11_ok);
          ("theorem3", a.theorem3_ok);
        ]
      in
      match List.find_opt (fun (_, ok) -> not ok) checks with
      | Some (name, _) -> QCheck.Test.fail_reportf "check failed: %s" name
      | None -> true)

let prop_analysis_matches_dual =
  QCheck.Test.make
    ~name:"job-centric g decomposition equals Dual.evaluate (Lemma 6)"
    ~count:150 arb_setup (fun setup ->
      let inst = instance_of setup in
      let r = Pd.run inst in
      let a = Analysis.analyze inst r in
      Float.abs (a.g_total -. r.dual_bound)
      <= 1e-6 *. (1.0 +. Float.abs r.dual_bound))

let prop_analysis_traces_capture_energy =
  QCheck.Test.make
    ~name:"trace energies never exceed PD's total energy" ~count:150
    arb_setup (fun setup ->
      let inst = instance_of setup in
      let r = Pd.run inst in
      let a = Analysis.analyze inst r in
      let traced =
        Array.to_list a.jobs
        |> Speedscale_util.Ksum.sum_by (fun ji -> ji.Analysis.e_pd)
      in
      traced <= a.e_pd_total +. (1e-6 *. (1.0 +. a.e_pd_total)))

let test_analysis_categories () =
  (* accepted job -> Finished; hopeless job -> rejected category *)
  let inst =
    instance
      [
        mk_job ~id:0 ~r:0.0 ~d:2.0 ~w:1.0 ~v:50.0 ();
        mk_job ~id:1 ~r:0.0 ~d:1.0 ~w:4.0 ~v:0.01 ();
      ]
  in
  let r = Pd.run inst in
  let a = Analysis.analyze inst r in
  Alcotest.(check string) "job0 finished" "finished"
    (Analysis.category_name a.jobs.(0).category);
  Alcotest.(check bool) "job1 rejected category" true
    (a.jobs.(1).category <> Analysis.Finished);
  (* the identity E_lambda = lambda * xhat / alpha (Prop 8a) *)
  Array.iter
    (fun (ji : Analysis.job_info) ->
      check_float "prop8a"
        (ji.lambda *. ji.xhat /. 2.0)
        ji.e_lambda)
    a.jobs

let prop_online_certificate_consistent =
  QCheck.Test.make
    ~name:"online certificate matches a fresh run on every prefix" ~count:60
    arb_setup (fun setup ->
      let inst = instance_of setup in
      let pd = Pd.create ~power:inst.power ~machines:inst.machines () in
      let ok = ref true in
      Array.iteri
        (fun i (j : Job.t) ->
          ignore (Pd.arrive pd j);
          let live = Pd.certificate pd in
          (* re-run PD from scratch on the prefix: same deterministic
             algorithm, so the dual bounds must coincide *)
          let prefix =
            Instance.make ~power:inst.power ~machines:inst.machines
              (List.init (i + 1) (Instance.job inst))
          in
          let fresh = (Pd.run prefix).dual_bound in
          if Float.abs (live -. fresh) > 1e-6 *. (1.0 +. Float.abs fresh)
          then ok := false)
        inst.jobs;
      !ok)

let test_certificate_empty () =
  let pd = Pd.create ~power:p2 ~machines:1 () in
  Alcotest.(check (float 0.0)) "no jobs, zero bound" 0.0 (Pd.certificate pd)

let prop_snapshot_restore_identical =
  QCheck.Test.make
    ~name:"snapshot mid-stream + restore = uninterrupted run" ~count:60
    arb_setup (fun setup ->
      let inst = instance_of setup in
      let n = Instance.n_jobs inst in
      QCheck.assume (n >= 2);
      let split = n / 2 in
      (* run A: uninterrupted *)
      let a = Pd.create ~power:inst.power ~machines:inst.machines () in
      Array.iter (fun j -> ignore (Pd.arrive a j)) inst.jobs;
      (* run B: snapshot after [split] arrivals, restore, continue *)
      let b0 = Pd.create ~power:inst.power ~machines:inst.machines () in
      Array.iteri
        (fun i j -> if i < split then ignore (Pd.arrive b0 j))
        inst.jobs;
      let b = Pd.restore (Pd.snapshot b0) in
      Array.iteri
        (fun i j -> if i >= split then ignore (Pd.arrive b j))
        inst.jobs;
      let cost_of t =
        Cost.total (Schedule.cost inst (Pd.schedule t))
      in
      let la = Pd.lambdas a and lb = Pd.lambdas b in
      if Float.abs (cost_of a -. cost_of b) > 1e-9 *. (1.0 +. cost_of a) then
        QCheck.Test.fail_reportf "cost differs after restore"
      else if
        not
          (List.for_all2
             (fun (i1, l1) (i2, l2) ->
               i1 = i2 && Float.abs (l1 -. l2) <= 1e-12 *. (1.0 +. l1))
             la lb)
      then QCheck.Test.fail_reportf "multipliers differ after restore"
      else true)

let test_snapshot_rejects_garbage () =
  (match Pd.restore "nonsense" with
  | exception Failure _ -> ()
  | _ -> Alcotest.fail "expected Failure");
  match Pd.restore "pd-snapshot v1\nalpha 2\n" with
  | exception Failure _ -> ()
  | _ -> Alcotest.fail "expected Failure on missing fields"

let test_analysis_high_yield_witness () =
  (* Derivation (alpha = 2, delta = 1/2, m = 1): job A spreads at speed
     s_A = 0.4 over [0,10], so lambda_A = w_A * s_A = 1.6 and
     shat_A = s_A/2 = 0.2.  Job B (w = 1, v = 0.44) faces a fitting price
     of delta * w * P'(0.5) = 0.5 > v, so PD rejects it — but
     shat_B = v/(2w) = 0.22 > shat_A, so the optimal infeasible solution
     runs B everywhere: xhat_B = 10 * 0.22 = 2.2 > 1.5, a high-yield job. *)
  let inst =
    instance
      [
        mk_job ~id:0 ~r:0.0 ~d:10.0 ~w:4.0 ~v:1e9 ();
        mk_job ~id:1 ~r:0.0 ~d:10.0 ~w:1.0 ~v:0.44 ();
      ]
  in
  let r = Pd.run inst in
  Alcotest.(check (list int)) "job1 rejected" [ 1 ] r.rejected;
  let a = Analysis.analyze inst r in
  Alcotest.(check string) "job1 is high-yield" "high-yield"
    (Analysis.category_name a.jobs.(1).category);
  Alcotest.(check (float 1e-6)) "xhat_B = 2.2" 2.2 a.jobs.(1).xhat;
  Alcotest.(check bool) "lemma 11 holds non-vacuously" true a.lemma11_ok;
  Alcotest.(check bool) "theorem 3 assembled" true a.theorem3_ok

(* ------------------------------------------------------------------ *)
(* The BKP adversarial family: PD behaves exactly like OA               *)
(* ------------------------------------------------------------------ *)

let bkp_instance ~alpha ~n =
  let power = Power.make alpha in
  Instance.make ~power ~machines:1
    (List.init n (fun i ->
         let j = i + 1 in
         mk_job ~id:i ~r:(float_of_int (j - 1)) ~d:(float_of_int n)
           (* slint: allow unsafe-pow -- j <= n so the base is >= 1 *)
           ~w:(float_of_int (n - j + 1) ** (-1.0 /. alpha))
           ~v:1e12 ()))

let test_pd_equals_oa_on_adversary () =
  let inst = bkp_instance ~alpha:2.0 ~n:10 in
  let pd_energy = (Pd.run inst).cost.energy in
  let oa_energy =
    Oa.energy (Instance.with_values inst (fun _ -> Float.infinity))
  in
  Alcotest.(check (float 1e-4)) "PD = OA on the lower-bound family" oa_energy
    pd_energy

let test_pd_adversarial_ratio () =
  let inst = bkp_instance ~alpha:2.0 ~n:14 in
  let r = Pd.run inst in
  let yds =
    Yds.energy p2
      (Array.to_list (Instance.with_values inst (fun _ -> Float.infinity)).jobs)
  in
  let ratio = r.cost.energy /. yds in
  Alcotest.(check bool)
    (Printf.sprintf "ratio %.3f in (1.5, 4]" ratio)
    true
    (ratio > 1.5 && ratio <= 4.0 +. 1e-6)

(* ------------------------------------------------------------------ *)
(* The Pd_core framework                                                *)
(* ------------------------------------------------------------------ *)

(* Pd is one instantiation of the Pd_core functor; this suite pins the
   framework path against Pd's public API so the two can never drift: a
   hand-assembled Make (Energy_value) (Interval) (Lagrangian) must make
   bit-identical decisions to Pd.arrive and agree with the bisection
   oracle Pd.arrive_reference to solver tolerance, with gc on and off,
   across the alpha/machine grid of the equivalence generator. *)
module FO = Pd_core.Energy_value
module FR = Pd_core.Interval (FO)
module FC = Pd_core.Lagrangian (FO)
module FCore = Pd_core.Make (FO) (FR) (FC)

let framework_pd ~gc ~power ~machines =
  FCore.create ~gc ~err:"Pd"
    (FO.make ~err:"Pd.create" ~power ~machines ())

let prop_framework_instantiation_matches_pd =
  QCheck.Test.make
    ~name:"framework instantiation = Pd (decisions, lambdas, schedules)"
    ~count:150 arb_equiv_setup (fun setup ->
      let inst = instance_of setup in
      let legacy = Pd.create ~power:inst.power ~machines:inst.machines () in
      let framed = framework_pd ~gc:false ~power:inst.power ~machines:inst.machines in
      let legacy_gc =
        Pd.create ~gc:true ~power:inst.power ~machines:inst.machines ()
      in
      let framed_gc =
        framework_pd ~gc:true ~power:inst.power ~machines:inst.machines
      in
      let oracle = Pd.create ~power:inst.power ~machines:inst.machines () in
      Array.iter
        (fun (j : Job.t) ->
          let dl = Pd.arrive legacy j in
          let df = FCore.arrive framed j in
          let dlg = Pd.arrive legacy_gc j in
          let dfg = FCore.arrive framed_gc j in
          let dr = Pd.arrive_reference oracle j in
          if df.accepted <> dl.accepted || not (Float.equal df.lambda dl.lambda)
          then
            QCheck.Test.fail_reportf
              "job %d: framework drifted from Pd (accepted %b/%b, lambda \
               %.17g vs %.17g)"
              j.id df.accepted dl.accepted df.lambda dl.lambda;
          if df.assignment <> dl.assignment then
            QCheck.Test.fail_reportf
              "job %d: framework assignment differs from Pd" j.id;
          if
            dfg.accepted <> dlg.accepted
            || not (Float.equal dfg.lambda dlg.lambda)
          then
            QCheck.Test.fail_reportf "job %d: framework gc path drifted" j.id;
          if df.accepted <> dr.accepted then
            QCheck.Test.fail_reportf
              "job %d: framework vs reference oracle decision flip" j.id;
          if
            Float.abs (df.lambda -. dr.lambda)
            > 1e-9 *. (1.0 +. Float.abs dr.lambda)
          then
            QCheck.Test.fail_reportf
              "job %d: framework lambda %.17g vs reference %.17g" j.id
              df.lambda dr.lambda)
        inst.jobs;
      let cost_of s = Cost.total (Schedule.cost inst s) in
      let cl = cost_of (Pd.schedule legacy) in
      let cf = cost_of (FCore.schedule framed) in
      let cfg = cost_of (FCore.schedule framed_gc) in
      if not (Float.equal cl cf) then
        QCheck.Test.fail_reportf "cost %.17g (framework) vs %.17g (Pd)" cf cl
      else if not (Float.equal cfg cf) then
        QCheck.Test.fail_reportf "cost %.17g (framework gc) vs %.17g" cfg cf
      else if
        not
          (Float.equal (Pd.certificate legacy) (FCore.certificate framed))
      then
        QCheck.Test.fail_reportf "certificate drifted between Pd and framework"
      else true)

(* The gc'd full-history operations fail with the documented typed error
   (the former bare Invalid_argument), and the _result variants report
   how much history is gone. *)
let test_gc_history_typed_error () =
  let pd = Pd.create ~gc:true ~power:p2 ~machines:1 () in
  for i = 0 to 99 do
    let r = float_of_int i in
    ignore (Pd.arrive pd (mk_job ~id:i ~r ~d:(r +. 0.5) ~w:0.5 ~v:50.0 ()))
  done;
  let m = Pd.mem pd in
  Alcotest.(check bool) "gc flushed something" true (m.flushed_intervals > 0);
  (match Pd.certificate_result pd with
  | Ok _ -> Alcotest.fail "certificate_result succeeded on a gc state"
  | Error e ->
    Alcotest.(check string) "operation" "Pd.certificate" e.operation;
    Alcotest.(check int) "flushed count" m.flushed_intervals
      e.flushed_intervals;
    Alcotest.(check int) "evicted count" m.evicted_jobs e.evicted_jobs);
  (match Pd.snapshot_result pd with
  | Ok _ -> Alcotest.fail "snapshot_result succeeded on a gc state"
  | Error e ->
    Alcotest.(check string) "operation" "Pd.snapshot" e.operation);
  (* the exception-style entry points raise the typed exception (not a
     bare Invalid_argument), and it is Pd_core's exception rebound *)
  (try
     ignore (Pd.certificate pd);
     Alcotest.fail "certificate did not raise"
   with
  | Pd.Bounded_memory e ->
    Alcotest.(check string) "raised operation" "Pd.certificate" e.operation
  | Invalid_argument _ -> Alcotest.fail "certificate raised Invalid_argument");
  (try
     ignore (Pd.snapshot pd);
     Alcotest.fail "snapshot did not raise"
   with Pd_core.Bounded_memory e ->
     Alcotest.(check string) "same exception via Pd_core" "Pd.snapshot"
       e.operation);
  (* a full-history state keeps both operations available *)
  let full = Pd.create ~power:p2 ~machines:1 () in
  ignore (Pd.arrive full (mk_job ~id:0 ~r:0.0 ~d:1.0 ~w:1.0 ~v:50.0 ()));
  (match Pd.certificate_result full with
  | Ok g -> Alcotest.(check bool) "certificate positive" true (g > 0.0)
  | Error _ -> Alcotest.fail "certificate_result failed without gc");
  match Pd.snapshot_result full with
  | Ok s ->
    Alcotest.(check bool) "snapshot text" true
      (String.length s > 0 && String.sub s 0 11 = "pd-snapshot")
  | Error _ -> Alcotest.fail "snapshot_result failed without gc"

let () =
  let q = QCheck_alcotest.to_alcotest in
  Alcotest.run "core"
    [
      ( "single-job",
        [
          Alcotest.test_case "accepted" `Quick test_single_job_accepted;
          Alcotest.test_case "rejected" `Quick test_single_job_rejected;
          Alcotest.test_case "boundary value" `Quick
            test_single_job_boundary_value;
          Alcotest.test_case "threshold matches module" `Quick
            test_rejection_threshold_matches_module;
          Alcotest.test_case "threshold alpha=3" `Quick
            test_rejection_threshold_alpha3;
        ] );
      ( "structure",
        [
          Alcotest.test_case "two jobs two processors" `Quick
            test_two_jobs_two_processors;
          Alcotest.test_case "keeps old distribution" `Quick
            test_pd_keeps_old_distribution;
          Alcotest.test_case "differs from OA" `Quick test_pd_differs_from_oa;
          Alcotest.test_case "refinement proportional" `Quick
            test_refinement_splits_proportionally;
          Alcotest.test_case "arrival order" `Quick test_arrival_order_enforced;
        ] );
      ( "arrival-path",
        [
          Alcotest.test_case "near-duplicate boundary snaps" `Quick
            test_near_duplicate_boundary;
          Alcotest.test_case "stats observer" `Quick
            test_arrival_stats_observer;
          q prop_pd_paths_equivalent;
        ] );
      ( "gc",
        [
          q prop_pd_gc_long_stream_oracle;
          Alcotest.test_case "flat residency on expired stream" `Quick
            test_gc_flat_residency_on_expired_stream;
          q prop_tline_matches_sorted_assoc_model;
        ] );
      ( "framework",
        [
          q prop_framework_instantiation_matches_pd;
          Alcotest.test_case "gc history typed error" `Quick
            test_gc_history_typed_error;
        ] );
      ( "theorem3",
        [
          q prop_theorem3_certificate;
          q prop_pd_schedule_feasible;
          q prop_pd_lambda_bounded_by_value;
          q prop_pd_dual_positive;
          q prop_pd_waterfilling_equalized;
          q prop_pd_energy_only_brackets_yds;
          q prop_pd_total_work_conserved;
        ] );
      ( "analysis",
        [
          Alcotest.test_case "categories and Prop 8a" `Quick
            test_analysis_categories;
          Alcotest.test_case "high-yield witness" `Quick
            test_analysis_high_yield_witness;
          Alcotest.test_case "certificate empty" `Quick test_certificate_empty;
          Alcotest.test_case "snapshot garbage" `Quick
            test_snapshot_rejects_garbage;
          q prop_online_certificate_consistent;
          q prop_snapshot_restore_identical;
          q prop_analysis_invariants;
          q prop_analysis_matches_dual;
          q prop_analysis_traces_capture_energy;
        ] );
      ( "adversary",
        [
          Alcotest.test_case "PD = OA" `Quick test_pd_equals_oa_on_adversary;
          Alcotest.test_case "ratio grows" `Quick test_pd_adversarial_ratio;
        ] );
    ]
