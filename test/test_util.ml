(* Unit and property tests for the numeric utility layer. *)

open Speedscale_util

let check_float = Alcotest.(check (float 1e-9))

(* ------------------------------------------------------------------ *)
(* Feq                                                                 *)
(* ------------------------------------------------------------------ *)

let test_feq_basics () =
  Alcotest.(check bool) "equal" true (Feq.approx 1.0 1.0);
  Alcotest.(check bool) "close" true (Feq.approx 1.0 (1.0 +. 1e-12));
  Alcotest.(check bool) "far" false (Feq.approx 1.0 1.1);
  Alcotest.(check bool) "relative" true (Feq.approx 1e12 (1e12 +. 1.0));
  Alcotest.(check bool) "leq slack" true (Feq.leq (1.0 +. 1e-12) 1.0);
  Alcotest.(check bool) "lt strict" false (Feq.lt 1.0 (1.0 +. 1e-12));
  Alcotest.(check bool) "lt true" true (Feq.lt 1.0 2.0);
  Alcotest.(check bool) "zero" true (Feq.is_zero 1e-12);
  Alcotest.(check bool) "not zero" false (Feq.is_zero 1e-3)

let test_clamp () =
  check_float "below" 0.0 (Feq.clamp ~lo:0.0 ~hi:1.0 (-3.0));
  check_float "above" 1.0 (Feq.clamp ~lo:0.0 ~hi:1.0 7.0);
  check_float "inside" 0.5 (Feq.clamp ~lo:0.0 ~hi:1.0 0.5)

let test_finite_or_fail () =
  check_float "pass-through" 3.5 (Feq.finite_or_fail "x" 3.5);
  Alcotest.check_raises "nan rejected" (Invalid_argument "ctx: non-finite value nan")
    (fun () -> ignore (Feq.finite_or_fail "ctx" Float.nan))

(* ------------------------------------------------------------------ *)
(* Bisect                                                              *)
(* ------------------------------------------------------------------ *)

let test_root_linear () =
  let x = Bisect.root ~f:(fun x -> x -. 3.0) ~lo:0.0 ~hi:10.0 () in
  check_float "linear root" 3.0 x

let test_root_cubic () =
  let x = Bisect.root ~f:(fun x -> (x ** 3.0) -. 2.0) ~lo:0.0 ~hi:2.0 () in
  check_float "cubic root" (2.0 ** (1.0 /. 3.0)) x

let test_root_no_bracket () =
  Alcotest.check_raises "no sign change"
    (Invalid_argument
       "Bisect.root: no sign change on [1, 2] (f: 1, 2)")
    (fun () -> ignore (Bisect.root ~f:Fun.id ~lo:1.0 ~hi:2.0 ()))

let test_monotone_inverse () =
  let f x = x ** 2.0 in
  let x = Bisect.monotone_inverse ~f ~target:9.0 ~lo:0.0 ~hi:10.0 () in
  check_float "sqrt via inverse" 3.0 x;
  (* saturation below returns lo; a target above f hi is out of bracket
     and must raise, never silently clamp to hi *)
  check_float "saturate lo" 2.0
    (Bisect.monotone_inverse ~f ~target:1.0 ~lo:2.0 ~hi:10.0 ());
  match Bisect.monotone_inverse ~f ~target:1e6 ~lo:2.0 ~hi:10.0 () with
  | exception Invalid_argument _ -> ()
  | x -> Alcotest.failf "out-of-bracket target returned %g instead of raising" x

let test_grow_bracket () =
  let f x = x in
  let hi = Bisect.grow_bracket ~f ~target:37.0 ~lo:0.0 ~init:1.0 () in
  Alcotest.(check bool) "covers target" true (f hi >= 37.0);
  (* lo is the bracket floor: the search starts at max lo init *)
  let hi = Bisect.grow_bracket ~f ~target:5.0 ~lo:64.0 ~init:1.0 () in
  check_float "floor respected" 64.0 hi

let prop_monotone_inverse_roundtrip =
  QCheck.Test.make ~name:"monotone_inverse inverts strictly monotone f"
    ~count:200
    QCheck.(pair (float_bound_exclusive 100.0) (float_bound_exclusive 3.0))
    (fun (target, k) ->
      let k = k +. 0.5 in
      let f x = k *. x in
      let x =
        Bisect.monotone_inverse ~f ~target ~lo:0.0 ~hi:1e4 ()
      in
      Float.abs (f x -. target) <= 1e-6 *. (1.0 +. target))

(* ------------------------------------------------------------------ *)
(* Golden                                                              *)
(* ------------------------------------------------------------------ *)

let test_golden_quadratic () =
  let x, fx = Golden.minimize ~f:(fun x -> (x -. 1.7) ** 2.0) ~lo:0.0 ~hi:5.0 () in
  Alcotest.(check (float 1e-6)) "argmin" 1.7 x;
  Alcotest.(check (float 1e-9)) "min value" 0.0 fx

let test_golden_boundary_minimum () =
  (* monotone increasing: minimum at the left edge *)
  let x, _ = Golden.minimize ~f:(fun x -> x) ~lo:2.0 ~hi:9.0 () in
  Alcotest.(check (float 1e-5)) "left edge" 2.0 x

let prop_golden_finds_unimodal_minimum =
  QCheck.Test.make ~name:"golden section finds |x - c|^p minima" ~count:200
    QCheck.(pair (float_range 0.5 9.5) (float_range 1.0 3.0))
    (fun (c, p) ->
      let f x = Float.abs (x -. c) ** p in
      let x, _ = Golden.minimize ~f ~lo:0.0 ~hi:10.0 () in
      Float.abs (x -. c) <= 1e-5 *. (1.0 +. c))

(* ------------------------------------------------------------------ *)
(* Ksum                                                                *)
(* ------------------------------------------------------------------ *)

let test_ksum_simple () =
  check_float "list" 6.0 (Ksum.sum [ 1.0; 2.0; 3.0 ]);
  check_float "array" 10.0 (Ksum.sum_array [| 1.0; 2.0; 3.0; 4.0 |]);
  check_float "by" 12.0 (Ksum.sum_by (fun x -> 2.0 *. x) [ 1.0; 2.0; 3.0 ])

let test_ksum_compensation () =
  (* 1 + 1e16 - 1e16 loses the 1 under naive summation order. *)
  let total = Ksum.sum [ 1.0; 1e16; -1e16 ] in
  check_float "compensated" 1.0 total

let test_ksum_neumaier_case () =
  (* the classical case where plain Kahan returns 0: the correction term
     itself underflows unless the larger summand feeds it (Neumaier) *)
  check_float "neumaier" 2.0 (Ksum.sum [ 1.0; 1e100; 1.0; -1e100 ]);
  check_float "accumulator api" 2.0
    (let acc = Ksum.create () in
     List.iter (Ksum.add acc) [ 1.0; 1e100; 1.0; -1e100 ];
     Ksum.total acc)

let prop_ksum_matches_sorted_sum =
  QCheck.Test.make ~name:"ksum close to exact rational sum" ~count:200
    QCheck.(list_of_size Gen.(1 -- 50) (float_bound_exclusive 1000.0))
    (fun xs ->
      let naive = List.fold_left ( +. ) 0.0 (List.sort Float.compare xs) in
      Float.abs (Ksum.sum xs -. naive) <= 1e-6 *. (1.0 +. Float.abs naive))

(* For positive summands, adding in ascending order is a high-accuracy
   reference; the compensated sum must match it to ~1 ulp of the total
   even when magnitudes span 16 decades. *)
let prop_ksum_matches_sorted_reference_wide_range =
  QCheck.Test.make
    ~name:"ksum within 1e-12 of the sorted-ascending sum over 16 decades"
    ~count:300
    QCheck.(list_of_size Gen.(1 -- 60) (make Gen.(float_range (-8.0) 8.0)))
    (fun exponents ->
      let xs = List.map (fun e -> 10.0 ** e) exponents in
      let reference =
        List.fold_left ( +. ) 0.0 (List.sort Float.compare xs)
      in
      Float.abs (Ksum.sum xs -. reference) <= 1e-12 *. reference)

(* ------------------------------------------------------------------ *)
(* Stats                                                               *)
(* ------------------------------------------------------------------ *)

let test_stats_summary () =
  let s = Stats.summarize [ 1.0; 2.0; 3.0; 4.0 ] in
  Alcotest.(check int) "count" 4 s.count;
  check_float "mean" 2.5 s.mean;
  check_float "min" 1.0 s.min;
  check_float "max" 4.0 s.max;
  check_float "median" 2.5 s.p50

let test_stats_percentile () =
  check_float "p0" 1.0 (Stats.percentile 0.0 [ 3.0; 1.0; 2.0 ]);
  check_float "p100" 3.0 (Stats.percentile 1.0 [ 3.0; 1.0; 2.0 ]);
  check_float "p50 interp" 1.5 (Stats.percentile 0.5 [ 1.0; 2.0 ])

let test_stats_empty () =
  Alcotest.check_raises "empty mean" (Invalid_argument "Stats.mean: empty sample")
    (fun () -> ignore (Stats.mean []))

(* ------------------------------------------------------------------ *)
(* Tab                                                                 *)
(* ------------------------------------------------------------------ *)

let contains_substring s sub =
  let n = String.length s and k = String.length sub in
  let rec go i = i + k <= n && (String.sub s i k = sub || go (i + 1)) in
  k = 0 || go 0

let test_tab_render () =
  let t = Tab.create ~title:"T" ~header:[ "a"; "bb" ] in
  Tab.add_row t [ "1"; "2" ];
  Tab.add_row t [ "333" ];
  let s = Tab.render t in
  Alcotest.(check bool) "contains title" true
    (String.length s > 0 && String.sub s 0 1 = "T");
  Alcotest.(check bool) "mentions row" true (contains_substring s "333")

let test_tab_bar () =
  Alcotest.(check string) "half bar" "#####" (Tab.bar ~width:10 ~max_value:2.0 1.0);
  Alcotest.(check string) "empty on zero max" "" (Tab.bar ~width:10 ~max_value:0.0 1.0)

let () =
  let q = QCheck_alcotest.to_alcotest in
  Alcotest.run "util"
    [
      ( "feq",
        [
          Alcotest.test_case "basics" `Quick test_feq_basics;
          Alcotest.test_case "clamp" `Quick test_clamp;
          Alcotest.test_case "finite_or_fail" `Quick test_finite_or_fail;
        ] );
      ( "bisect",
        [
          Alcotest.test_case "root linear" `Quick test_root_linear;
          Alcotest.test_case "root cubic" `Quick test_root_cubic;
          Alcotest.test_case "no bracket" `Quick test_root_no_bracket;
          Alcotest.test_case "monotone inverse" `Quick test_monotone_inverse;
          Alcotest.test_case "grow bracket" `Quick test_grow_bracket;
          q prop_monotone_inverse_roundtrip;
        ] );
      ( "golden",
        [
          Alcotest.test_case "quadratic" `Quick test_golden_quadratic;
          Alcotest.test_case "boundary" `Quick test_golden_boundary_minimum;
          q prop_golden_finds_unimodal_minimum;
        ] );
      ( "ksum",
        [
          Alcotest.test_case "simple" `Quick test_ksum_simple;
          Alcotest.test_case "compensation" `Quick test_ksum_compensation;
          Alcotest.test_case "neumaier" `Quick test_ksum_neumaier_case;
          q prop_ksum_matches_sorted_sum;
          q prop_ksum_matches_sorted_reference_wide_range;
        ] );
      ( "stats",
        [
          Alcotest.test_case "summary" `Quick test_stats_summary;
          Alcotest.test_case "percentile" `Quick test_stats_percentile;
          Alcotest.test_case "empty" `Quick test_stats_empty;
        ] );
      ( "tab",
        [
          Alcotest.test_case "render" `Quick test_tab_render;
          Alcotest.test_case "bar" `Quick test_tab_bar;
        ] );
    ]
