(* Tests for the online-engine registry: golden costs pinned per engine,
   online = batch (Driver) agreement, prefix stability (a decision on a
   prefix is byte-identical whether or not a suffix exists), and
   snapshot/restore round-trips. *)

open Speedscale_model
module Online = Speedscale_engine.Online
module Driver = Speedscale_sim.Driver
module Oa_engine = Speedscale_single.Oa_engine

let p3 = Power.make 3.0

(* The two E-series presets every engine is pinned on (seed and sizes
   match the values captured from the pre-refactor batch paths). *)
let golden_single =
  Speedscale_workload.Generate.datacenter ~power:p3 ~machines:1 ~seed:11
    ~n:12

let golden_multi =
  Speedscale_workload.Generate.datacenter ~power:p3 ~machines:3 ~seed:11
    ~n:14

(* ------------------------------------------------------------------ *)
(* Registry shape                                                       *)
(* ------------------------------------------------------------------ *)

let test_registry () =
  Alcotest.(check int) "ten engines" 10 (List.length Online.all);
  let names = List.map Online.name Online.all in
  Alcotest.(check (list string))
    "names"
    [
      "pd"; "npd"; "oa"; "avr"; "bkp"; "cll"; "moa"; "mavr"; "mcll";
      "partitioned";
    ]
    names;
  (* every engine declares its scheduling-model family *)
  Alcotest.(check (list string))
    "families"
    [
      "migratory"; "non-preemptive"; "preemptive"; "preemptive"; "preemptive";
      "preemptive"; "migratory"; "migratory"; "migratory"; "preemptive";
    ]
    (List.map (fun e -> Online.family_name (Online.family e)) Online.all);
  Alcotest.(check bool) "find pd" true (Online.find "PD" <> None);
  Alcotest.(check bool) "find npd" true (Online.find "NPD" <> None);
  Alcotest.(check bool) "find unknown" true (Online.find "yds" = None);
  (* single-processor classics refuse multiprocessor params *)
  Alcotest.check_raises "oa on m=2"
    (Invalid_argument "Online: engine oa is not applicable (machines = 2)")
    (fun () ->
      ignore (Online.start Online.oa (Online.params ~power:p3 ~machines:2 ())))

(* ------------------------------------------------------------------ *)
(* Golden costs + online = batch agreement                              *)
(* ------------------------------------------------------------------ *)

(* Costs captured from the legacy batch code paths before they were
   rebuilt on the incremental engines; any drift here means an engine no
   longer reproduces its batch counterpart. *)
let pinned =
  [
    ("single", "pd", 17.3655266437);
    ("single", "npd", 10.6774478387);
    ("single", "oa", 72.6165338428);
    ("single", "avr", 95.370113241);
    ("single", "bkp", 240.802924214);
    ("single", "cll", 13.1150728299);
    ("single", "moa", 72.6165338428);
    ("single", "mavr", 95.370113241);
    ("single", "mcll", 13.1150728299);
    ("single", "partitioned", 70.9525809571);
    ("multi", "pd", 15.3490173698);
    ("multi", "npd", 40.5850362424);
    ("multi", "moa", 48.4978634059);
    ("multi", "mavr", 75.2535631956);
    ("multi", "mcll", 14.0404649068);
    ("multi", "partitioned", 53.3789806859);
  ]

let driver_of_engine e =
  List.find
    (fun (a : Driver.algorithm) ->
      String.lowercase_ascii a.name = Online.name e)
    Driver.all

let test_golden_costs () =
  List.iter
    (fun (tag, inst) ->
      List.iter
        (fun e ->
          if Online.applicable e (Online.params_of_instance inst) then begin
            let name = Online.name e in
            let r = Online.run e inst in
            (match Schedule.validate inst r.schedule with
            | Ok () -> ()
            | Error msg -> Alcotest.failf "%s/%s invalid: %s" tag name msg);
            let cost = Cost.total (Schedule.cost inst r.schedule) in
            (match
               List.assoc_opt (tag, name)
                 (List.map (fun (t, n, c) -> ((t, n), c)) pinned)
             with
            | Some expected ->
              Alcotest.(check (float 1e-5))
                (Printf.sprintf "%s/%s pinned cost" tag name)
                expected cost
            | None -> Alcotest.failf "no pinned cost for %s/%s" tag name);
            (* one decision per arrival, plan matches the decisions *)
            Alcotest.(check int)
              (Printf.sprintf "%s/%s decision count" tag name)
              (Instance.n_jobs inst)
              (List.length r.decisions);
            let rejected_by_decision =
              List.filter_map
                (fun (d : Online.decision) ->
                  if d.accepted then None else Some d.job_id)
                r.decisions
              |> List.sort Int.compare
            in
            Alcotest.(check (list int))
              (Printf.sprintf "%s/%s rejected set" tag name)
              rejected_by_decision
              (List.sort Int.compare r.schedule.rejected);
            (* batch Driver counterpart runs the same fold *)
            let dr = Driver.evaluate (driver_of_engine e) inst in
            Alcotest.(check (float 1e-9))
              (Printf.sprintf "%s/%s online = Driver" tag name)
              (Cost.total dr.cost) cost
          end)
        Online.all)
    [ ("single", golden_single); ("multi", golden_multi) ]

(* ------------------------------------------------------------------ *)
(* Observer and params plumbing                                         *)
(* ------------------------------------------------------------------ *)

let test_observer_and_clock () =
  let events = ref 0 in
  let r =
    Online.run Online.pd golden_single ~observer:(fun ev ->
        incr events;
        Alcotest.(check (float 0.0)) "wall_s is 0 without clock" 0.0 ev.wall_s)
  in
  Alcotest.(check int)
    "observer fired per arrival"
    (Instance.n_jobs golden_single)
    !events;
  ignore r;
  (* a fake injected clock is read twice per arrival *)
  let ticks = ref 0.0 in
  let clock () =
    ticks := !ticks +. 0.5;
    !ticks
  in
  let wall = ref 0.0 in
  ignore
    (Online.run Online.cll golden_single ~clock ~observer:(fun ev ->
         wall := !wall +. ev.wall_s));
  Alcotest.(check (float 1e-9))
    "fake clock accumulates 0.5 per arrival"
    (0.5 *. float_of_int (Instance.n_jobs golden_single))
    !wall

let test_driver_clock_injection () =
  let r = Driver.evaluate Driver.pd golden_single in
  Alcotest.(check (float 0.0)) "deterministic elapsed_s" 0.0 r.elapsed_s;
  let ticks = ref 0.0 in
  let clock () =
    ticks := !ticks +. 2.5;
    !ticks
  in
  let r = Driver.evaluate ~clock Driver.pd golden_single in
  Alcotest.(check (float 1e-9)) "injected elapsed_s" 2.5 r.elapsed_s

(* ------------------------------------------------------------------ *)
(* Prefix stability (qcheck, every engine)                              *)
(* ------------------------------------------------------------------ *)

let mk_job ~id ~r ~d ~w ~v =
  Job.make ~id ~release:r ~deadline:d ~workload:w ~value:v

let gen_setup =
  QCheck.Gen.(
    let* machines = 1 -- 3 in
    let* n = 2 -- 5 in
    let* jobs =
      list_size (return n)
        (let* r = float_range 0.0 5.0 in
         let* span = float_range 0.4 3.0 in
         let* w = float_range 0.2 2.0 in
         let* v = float_range 0.5 20.0 in
         return (r, r +. span, w, v))
    in
    return (machines, jobs))

let arb_setup =
  QCheck.make gen_setup ~print:(fun (m, jobs) ->
      Printf.sprintf "m=%d jobs=[%s]" m
        (String.concat ";"
           (List.map
              (fun (r, d, w, v) -> Printf.sprintf "(%g,%g,%g,%g)" r d w v)
              jobs)))

let instance_of (machines, jobs) =
  Instance.make ~power:p3 ~machines
    (List.mapi (fun i (r, d, w, v) -> mk_job ~id:i ~r ~d ~w ~v) jobs)

let decision_eq (a : Online.decision) (b : Online.decision) =
  a.job_id = b.job_id && a.accepted = b.accepted
  && Option.equal Float.equal a.lambda b.lambda
  && Option.equal Float.equal a.planned_speed b.planned_speed

let prop_prefix_stability =
  QCheck.Test.make
    ~name:
      "prefix stability: every engine's decisions on a k-prefix are \
       byte-identical with and without the suffix"
    ~count:15 arb_setup (fun setup ->
      let inst = instance_of setup in
      let jobs = Array.to_list inst.jobs in
      let n = List.length jobs in
      let k = max 1 (n / 2) in
      let prefix = List.filteri (fun i _ -> i < k) jobs in
      List.for_all
        (fun e ->
          let p = Online.params_of_instance inst in
          (not (Online.applicable e p))
          ||
          let full = Online.start e p in
          let full_decisions = List.map (Online.arrive full) jobs in
          let pre = Online.start e p in
          let pre_decisions = List.map (Online.arrive pre) prefix in
          let stable =
            List.for_all2 decision_eq pre_decisions
              (List.filteri (fun i _ -> i < k) full_decisions)
          in
          if not stable then
            QCheck.Test.fail_reportf "engine %s: prefix decisions diverge"
              (Online.name e);
          (* the prefix state's snapshot is the canonical replay record:
             independent of anything after the prefix *)
          let resumed = Online.restore (Online.snapshot pre) in
          let suffix = List.filteri (fun i _ -> i >= k) jobs in
          let resumed_decisions = List.map (Online.arrive resumed) suffix in
          List.for_all2 decision_eq resumed_decisions
            (List.filteri (fun i _ -> i >= k) full_decisions))
        Online.all)

(* ------------------------------------------------------------------ *)
(* Snapshot / restore                                                   *)
(* ------------------------------------------------------------------ *)

let test_snapshot_roundtrip () =
  List.iter
    (fun e ->
      let name = Online.name e in
      let inst = golden_multi in
      let p = Online.params_of_instance inst in
      if Online.applicable e p then begin
        let jobs = Array.to_list inst.jobs in
        let k = List.length jobs / 2 in
        let t1 = Online.start e p in
        List.iteri
          (fun i j -> if i < k then ignore (Online.arrive t1 j))
          jobs;
        let snap = Online.snapshot t1 in
        let t2 = Online.restore snap in
        Alcotest.(check string)
          (name ^ ": snapshot of restored state is byte-identical")
          snap (Online.snapshot t2);
        (* both halves continue identically *)
        List.iteri
          (fun i j ->
            if i >= k then begin
              let d1 = Online.arrive t1 j and d2 = Online.arrive t2 j in
              Alcotest.(check bool)
                (name ^ ": post-restore decision agrees")
                true
                (d1.accepted = d2.accepted
                && Option.equal Float.equal d1.lambda d2.lambda)
            end)
          jobs;
        Alcotest.(check (float 1e-9))
          (name ^ ": post-restore final cost agrees")
          (Cost.total (Schedule.cost inst (Online.finalize t1)))
          (Cost.total (Schedule.cost inst (Online.finalize t2)))
      end)
    Online.all

(* The pd engine runs its core with GC on (bounded memory), so the cut
   may land long after the native timeline has flushed its past.  The
   replay snapshot must still be an exact state transfer: decisions after
   restore byte-identical to the uninterrupted stream. *)
let gen_gc_stream =
  QCheck.Gen.(
    let* machines = oneofl [ 1; 3 ] in
    let* seed = int_range 0 1000 in
    return (machines, seed))

let arb_gc_stream =
  QCheck.make gen_gc_stream ~print:(fun (m, seed) ->
      Printf.sprintf "m=%d seed=%d" m seed)

let expiring_jobs ~seed ~n =
  (* releases march forward fast against tight deadlines, so intervals
     fall wholly into the past within a handful of arrivals *)
  let st = Random.State.make [| 0x6c1; seed |] in
  let t = ref 0.0 in
  List.init n (fun i ->
      t := !t +. 0.5 +. Random.State.float st 1.0;
      let w = 0.2 +. Random.State.float st 1.5 in
      let span = 0.3 +. Random.State.float st 1.2 in
      let v = 0.5 +. Random.State.float st 20.0 in
      mk_job ~id:i ~r:!t ~d:(!t +. span) ~w ~v)

let prop_gc_snapshot_restore_continue =
  QCheck.Test.make
    ~name:
      "pd engine: snapshot -> restore -> continue after GC fired is \
       byte-identical to the uninterrupted stream"
    ~count:20 arb_gc_stream (fun (machines, seed) ->
      let n = 60 in
      let jobs = expiring_jobs ~seed ~n in
      let k = n / 2 in
      (* the same prefix drives the raw core: GC must actually have fired
         before the cut, otherwise this property tests nothing *)
      let probe =
        Speedscale_core.Pd.create ~gc:true ~power:p3 ~machines ()
      in
      List.iteri
        (fun i j -> if i < k then ignore (Speedscale_core.Pd.arrive probe j))
        jobs;
      if (Speedscale_core.Pd.mem probe).flushed_intervals = 0 then
        QCheck.Test.fail_reportf "GC never fired on the %d-arrival prefix" k;
      let p = Online.params ~power:p3 ~machines () in
      let full = Online.start Online.pd p in
      let full_decisions = List.map (Online.arrive full) jobs in
      let pre = Online.start Online.pd p in
      List.iteri (fun i j -> if i < k then ignore (Online.arrive pre j)) jobs;
      let resumed = Online.restore (Online.snapshot pre) in
      let suffix = List.filteri (fun i _ -> i >= k) jobs in
      let resumed_decisions = List.map (Online.arrive resumed) suffix in
      List.for_all2 decision_eq resumed_decisions
        (List.filteri (fun i _ -> i >= k) full_decisions))

(* A snapshot file written before the tree-timeline/GC rework must still
   restore: the `online-snapshot v1` wire format is replay-based and owes
   nothing to the core's internal representation.  This fixture is a
   verbatim pre-rework snapshot (two arrivals into the pd engine). *)
let pre_rework_v1_fixture =
  "online-snapshot v1\n\
   engine pd\n\
   alpha 3\n\
   machines 2\n\
   job 0 0 2 1 10\n\
   job 1 0.5 1.5 1 inf\n"

let test_pre_rework_snapshot_still_restores () =
  let t = Online.restore pre_rework_v1_fixture in
  (* continuing from the fixture equals running the whole stream fresh *)
  let jobs =
    [
      mk_job ~id:0 ~r:0.0 ~d:2.0 ~w:1.0 ~v:10.0;
      mk_job ~id:1 ~r:0.5 ~d:1.5 ~w:1.0 ~v:Float.infinity;
    ]
  in
  let later = mk_job ~id:2 ~r:1.0 ~d:3.0 ~w:0.8 ~v:5.0 in
  let fresh = Online.start Online.pd (Online.params ~power:p3 ~machines:2 ()) in
  let fresh_decisions = List.map (Online.arrive fresh) (jobs @ [ later ]) in
  let d_restored = Online.arrive t later in
  Alcotest.(check bool)
    "decision after restoring the old snapshot matches a fresh run" true
    (decision_eq d_restored (List.nth fresh_decisions 2));
  Alcotest.(check (float 1e-9))
    "final cost agrees"
    (Cost.total
       (Schedule.cost
          (Instance.make ~power:p3 ~machines:2 (jobs @ [ later ]))
          (Online.finalize fresh)))
    (Cost.total
       (Schedule.cost
          (Instance.make ~power:p3 ~machines:2 (jobs @ [ later ]))
          (Online.finalize t)))

let test_restore_errors () =
  Alcotest.check_raises "not a snapshot"
    (Failure "Online.restore: not an online-snapshot v1") (fun () ->
      ignore (Online.restore "pd-snapshot v1\n"));
  Alcotest.check_raises "unknown engine"
    (Failure "Online.restore: unknown engine \"yds\"") (fun () ->
      ignore
        (Online.restore
           "online-snapshot v1\nengine yds\nalpha 3\nmachines 1\n"))

(* ------------------------------------------------------------------ *)
(* clip_slices sliver regression                                        *)
(* ------------------------------------------------------------------ *)

let slice ~t0 ~t1 ~job : Schedule.slice =
  { proc = 0; t0; t1; job; speed = 1.0 }

let test_clip_slivers () =
  let slices = [ slice ~t0:0.0 ~t1:1.0 ~job:0; slice ~t0:1.0 ~t1:2.0 ~job:1 ] in
  (* a cut within float-dust of a boundary must not leave a zero-width
     sliver of the next slice behind *)
  let clipped = Oa_engine.clip_slices ~until:(1.0 +. 1e-12) slices in
  Alcotest.(check int) "sliver dropped" 1 (List.length clipped);
  Alcotest.(check int) "survivor is the first slice" 0
    (List.hd clipped).job;
  (* an interior cut keeps both parts, truncating the second *)
  let clipped = Oa_engine.clip_slices ~until:1.5 slices in
  Alcotest.(check int) "two slices" 2 (List.length clipped);
  let second = List.nth clipped 1 in
  Alcotest.(check (float 0.0)) "second truncated" 1.5 second.t1;
  (* a cut exactly at a boundary keeps only the first *)
  let clipped = Oa_engine.clip_slices ~until:1.0 slices in
  Alcotest.(check int) "boundary cut" 1 (List.length clipped)

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "engine_online"
    [
      ( "registry",
        [
          Alcotest.test_case "shape and lookup" `Quick test_registry;
          Alcotest.test_case "golden costs, online = batch" `Slow
            test_golden_costs;
        ] );
      ( "plumbing",
        [
          Alcotest.test_case "observer + engine clock" `Quick
            test_observer_and_clock;
          Alcotest.test_case "driver clock injection" `Quick
            test_driver_clock_injection;
        ] );
      ( "stability",
        [
          QCheck_alcotest.to_alcotest prop_prefix_stability;
          QCheck_alcotest.to_alcotest prop_gc_snapshot_restore_continue;
          Alcotest.test_case "snapshot roundtrip" `Slow
            test_snapshot_roundtrip;
          Alcotest.test_case "pre-rework v1 snapshot restores" `Quick
            test_pre_rework_snapshot_still_restores;
          Alcotest.test_case "restore errors" `Quick test_restore_errors;
        ] );
      ( "clipping",
        [ Alcotest.test_case "sliver regression" `Quick test_clip_slivers ] );
    ]
