(* Regression test over the experiment harness itself: run the fast
   figure/property experiments end-to-end and require every verdict to be
   CONFIRMED.  This pins the reproduced figures and the lemma-level
   numerics against future changes. *)

let bench_exe =
  let candidates =
    [
      "../bench/main.exe";
      "_build/default/bench/main.exe";
      "bench/main.exe";
    ]
  in
  match List.find_opt Sys.file_exists candidates with
  | Some p -> p
  | None -> "../bench/main.exe"

let run_experiments ids =
  let out = Filename.temp_file "bench" ".out" in
  let cmd =
    Printf.sprintf "%s %s > %s 2>&1"
      (Filename.quote bench_exe)
      (String.concat " " ids)
      (Filename.quote out)
  in
  let code = Sys.command cmd in
  let ic = open_in out in
  let text =
    Fun.protect
      ~finally:(fun () ->
        close_in ic;
        Sys.remove out)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  (code, text)

let count_substring text sub =
  let n = String.length text and k = String.length sub in
  let rec go i acc =
    if i + k > n then acc
    else if String.sub text i k = sub then go (i + 1) (acc + 1)
    else go (i + 1) acc
  in
  go 0 0

let test_fast_experiments_confirmed () =
  let ids = [ "E2"; "E3"; "E4"; "E5"; "E10" ] in
  let code, text = run_experiments ids in
  Alcotest.(check int) "exit code" 0 code;
  Alcotest.(check int) "no NOT CONFIRMED" 0 (count_substring text "NOT CONFIRMED");
  Alcotest.(check int)
    (Printf.sprintf "%d verdicts" (List.length ids))
    (List.length ids)
    (count_substring text "-> CONFIRMED")

let test_figure_contents_stable () =
  (* pin the key lines of the reproduced figures *)
  let _, text = run_experiments [ "E4"; "E5" ] in
  List.iter
    (fun marker ->
      Alcotest.(check bool)
        (Printf.sprintf "mentions %S" marker)
        true
        (count_substring text marker > 0))
    [
      (* Figure 2: dedicated -> pool flip *)
      "job 0 DEDICATED  load 6.00";
      "POOL at speed 3.50";
      (* Figure 3: the conservative last interval *)
      "speed in the last atomic interval [2,3): PD 1.000 vs OA 1.667";
    ]

let test_unknown_id_rejected () =
  (* a typo like E99 must not pass for a successful (empty) run *)
  let code, text = run_experiments [ "E99" ] in
  Alcotest.(check int) "exit code" 2 code;
  Alcotest.(check bool) "names the bad id" true
    (count_substring text "unknown experiment id \"E99\"" > 0)

let () =
  Alcotest.run "bench-harness"
    [
      ( "verdicts",
        [
          Alcotest.test_case "fast experiments confirmed" `Quick
            test_fast_experiments_confirmed;
          Alcotest.test_case "figures stable" `Quick test_figure_contents_stable;
        ] );
      ( "cli",
        [
          Alcotest.test_case "unknown id rejected" `Quick
            test_unknown_id_rejected;
        ] );
    ]
