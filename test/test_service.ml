(* Tests for the sharded admission-control service and its parts: the
   persistent worker pool (lib/obs/pool), atomic file commits and the
   checkpoint manifest protocol (lib/service), and the service loop's
   headline properties — deterministic merged output at any worker
   count, checkpoint-at-arbitrary-cut → restore → replay-suffix
   byte-identity for every registry engine, and live migration leaving
   the decision stream untouched. *)

open Speedscale_model
module Online = Speedscale_engine.Online
module Pool = Speedscale_obs.Pool
module Atomic_io = Speedscale_service.Atomic_io
module Checkpoint = Speedscale_service.Checkpoint
module Service = Speedscale_service.Service

let contains text sub =
  let n = String.length text and k = String.length sub in
  let rec go i = i + k <= n && (String.sub text i k = sub || go (i + 1)) in
  k = 0 || go 0

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let write_file path text =
  let oc = open_out_bin path in
  output_string oc text;
  close_out oc

let with_tmp_dir f =
  let dir = Filename.temp_file "service" ".d" in
  Sys.remove dir;
  Sys.mkdir dir 0o755;
  Fun.protect
    ~finally:(fun () ->
      Array.iter
        (fun n -> Sys.remove (Filename.concat dir n))
        (Sys.readdir dir);
      Sys.rmdir dir)
    (fun () -> f dir)

(* ------------------------------------------------------------------ *)
(* Atomic_io                                                            *)
(* ------------------------------------------------------------------ *)

let test_atomic_roundtrip () =
  with_tmp_dir (fun dir ->
      let path = Filename.concat dir "f" in
      Atomic_io.write ~path "hello";
      Alcotest.(check string) "roundtrip" "hello" (Atomic_io.read ~path);
      Atomic_io.write ~path "replaced";
      Alcotest.(check string) "replace" "replaced" (Atomic_io.read ~path))

(* The satellite bugfix pinned as a property: a writer that dies midway
   must never leave a partial file at the destination — the previous
   contents survive untouched and no temp file lingers. *)
let test_atomic_partial_never_observed () =
  with_tmp_dir (fun dir ->
      let path = Filename.concat dir "snap" in
      Atomic_io.write ~path "old and complete";
      let n = ref 0 in
      let boom () =
        incr n;
        if !n > 2 then failwith "disk died" else Some "partial chunk "
      in
      (match Atomic_io.write_seq ~path boom with
      | () -> Alcotest.fail "write_seq should have raised"
      | exception Failure m ->
        Alcotest.(check string) "the writer's error survives" "disk died" m);
      Alcotest.(check string)
        "old contents still in place" "old and complete"
        (Atomic_io.read ~path);
      Alcotest.(check bool)
        "no temp file left behind" false
        (Sys.file_exists (path ^ ".tmp")))

(* ------------------------------------------------------------------ *)
(* Pool                                                                 *)
(* ------------------------------------------------------------------ *)

(* Queue-confined counters: each queue's tasks append to that queue's
   own buffer, so per-queue serialization is exactly what makes this
   test deterministic. *)
let test_pool_per_queue_order () =
  let queues = 4 and per_queue = 500 in
  let pool = Pool.create ~workers:3 ~queues () in
  let logs = Array.init queues (fun _ -> ref []) in
  for i = 0 to per_queue - 1 do
    for q = 0 to queues - 1 do
      while not (Pool.submit pool ~queue:q (fun () ->
                     logs.(q) := i :: !(logs.(q))))
      do
        Domain.cpu_relax ()
      done
    done
  done;
  Pool.quiesce pool;
  Pool.shutdown pool;
  Array.iter
    (fun log ->
      Alcotest.(check (list int))
        "tasks of one queue ran in submission order"
        (List.init per_queue (fun i -> per_queue - 1 - i))
        !(log))
    logs

let test_pool_migration_keeps_order () =
  let pool = Pool.create ~workers:4 ~queues:1 () in
  let log = ref [] in
  for i = 0 to 999 do
    if i mod 100 = 0 then
      Pool.assign pool ~queue:0 ~worker:(i / 100 mod 4);
    while not (Pool.submit pool ~queue:0 (fun () -> log := i :: !log)) do
      Domain.cpu_relax ()
    done
  done;
  Pool.quiesce pool;
  Pool.shutdown pool;
  Alcotest.(check (list int))
    "order survives reassignment"
    (List.init 1000 (fun i -> 999 - i))
    !log

let test_pool_poison_and_shutdown () =
  let pool = Pool.create ~workers:2 ~queues:2 () in
  ignore (Pool.submit pool ~queue:1 (fun () -> failwith "task blew up"));
  (match Pool.quiesce pool with
  | () -> Alcotest.fail "quiesce should re-raise the task's exception"
  | exception Failure m -> Alcotest.(check string) "message" "task blew up" m);
  (match Pool.shutdown pool with
  | () -> Alcotest.fail "shutdown should re-raise too"
  | exception Failure _ -> ());
  (* idempotent: a second shutdown still reports, never hangs *)
  (match Pool.shutdown pool with
  | () -> Alcotest.fail "still poisoned"
  | exception Failure _ -> ());
  match Pool.submit pool ~queue:0 (fun () -> ()) with
  | _ -> Alcotest.fail "submit after shutdown should raise"
  | exception Invalid_argument _ -> ()

(* ------------------------------------------------------------------ *)
(* Service: determinism and equivalences                                *)
(* ------------------------------------------------------------------ *)

let p3 = Power.make 3.0

let jobs_of n ~machines ~seed =
  let inst =
    Speedscale_workload.Generate.random ~power:p3 ~machines ~seed ~n
      ~arrivals:(Poisson 1.0)
      ~sizes:(Uniform_size (0.3, 2.5))
      ~laxity:(0.4, 2.5)
      ~values:(Uniform_value (0.2, 20.0))
  in
  Array.to_list inst.Instance.jobs

let feed svc jobs =
  let evs = List.concat_map (fun j -> Service.submit svc j) jobs in
  evs @ Service.drain svc

let ev_eq (a : Service.ev) (b : Service.ev) =
  a.seq = b.seq && a.shard = b.shard
  && a.decision.Online.job_id = b.decision.Online.job_id
  && a.decision.accepted = b.decision.accepted
  && a.decision.lambda = b.decision.lambda
  && a.decision.planned_speed = b.decision.planned_speed

let check_ev_lists what expected got =
  Alcotest.(check int) (what ^ ": count") (List.length expected)
    (List.length got);
  Alcotest.(check bool)
    (what ^ ": events equal") true
    (List.for_all2 ev_eq expected got)

(* One shard over the whole machine pool is plain Online.run with a
   pool-and-queue detour: decisions and final schedule must agree
   exactly. *)
let test_service_k1_equals_online_run () =
  let jobs = jobs_of 80 ~machines:2 ~seed:5 in
  let params _ = Online.params ~power:p3 ~machines:2 () in
  let svc = Service.create ~engine:Online.pd ~params ~shards:1 () in
  let evs = feed svc jobs in
  let plans = Service.finalize svc in
  Service.shutdown svc;
  let t = Online.start Online.pd (params 0) in
  let direct = List.map (Online.arrive t) jobs in
  let direct_plan = Online.finalize t in
  Alcotest.(check int) "event count" (List.length jobs) (List.length evs);
  List.iter2
    (fun (ev : Service.ev) (d : Online.decision) ->
      Alcotest.(check bool) "same decision" true
        (ev.decision.job_id = d.job_id
        && ev.decision.accepted = d.accepted
        && ev.decision.lambda = d.lambda
        && ev.decision.planned_speed = d.planned_speed))
    evs direct;
  Alcotest.(check int) "one plan" 1 (Array.length plans);
  Alcotest.(check (float 1e-12))
    "same energy" (Schedule.energy p3 direct_plan)
    (Schedule.energy p3 plans.(0))

(* Same shards, different worker counts: the merged stream must not
   care how many domains serve it. *)
let test_service_worker_count_invariance () =
  let jobs = jobs_of 120 ~machines:4 ~seed:9 in
  let params _ = Online.params ~power:p3 ~machines:1 () in
  let run workers =
    let svc =
      Service.create ~workers ~engine:Online.pd ~params ~shards:4 ()
    in
    let evs = feed svc jobs in
    Service.shutdown svc;
    evs
  in
  check_ev_lists "1 vs 4 workers" (run 1) (run 4);
  check_ev_lists "4 vs 2 workers" (run 4) (run 2)

(* Live migration is an exact state transfer: rotating every shard
   across every worker mid-stream changes nothing downstream. *)
let test_service_migration_equivalence () =
  let jobs = jobs_of 150 ~machines:3 ~seed:13 in
  let params _ = Online.params ~power:p3 ~machines:1 () in
  let quiet =
    let svc =
      Service.create ~workers:3 ~engine:Online.pd ~params ~shards:3 ()
    in
    let evs = feed svc jobs in
    Service.shutdown svc;
    evs
  in
  let migrated =
    let svc =
      Service.create ~workers:3 ~engine:Online.pd ~params ~shards:3 ()
    in
    let evs = ref [] in
    List.iteri
      (fun i j ->
        evs := !evs @ Service.submit svc j;
        if i mod 10 = 0 then
          Service.migrate svc ~shard:(i mod 3)
            ~worker:((Service.worker_of svc ~shard:(i mod 3) + 1) mod 3))
      jobs;
    let out = !evs @ Service.drain svc in
    Service.shutdown svc;
    out
  in
  check_ev_lists "migration" quiet migrated

(* ------------------------------------------------------------------ *)
(* Checkpoint-at-arbitrary-cut, for every registry engine               *)
(* ------------------------------------------------------------------ *)

(* The failover property the whole design rests on: cut a checkpoint at
   any point of the stream, restore a fresh service from the manifest
   alone, replay the suffix — decisions and final schedules are
   identical to the uninterrupted run.  With one machine per shard all
   nine registry engines are applicable, so the property is pinned for
   each of them through the sharded path. *)
let test_checkpoint_cut_restore_replay_all_engines () =
  let shards = 3 in
  let jobs = jobs_of 60 ~machines:shards ~seed:21 in
  let params _ = Online.params ~power:p3 ~machines:1 () in
  List.iter
    (fun engine ->
      let name = Online.name engine in
      List.iter
        (fun cut ->
          with_tmp_dir (fun dir ->
              let svc = Service.create ~engine ~params ~shards () in
              let rec go acc i = function
                | [] -> (acc, [])
                | rest when i = cut ->
                  (* settle the pre-cut decisions so the post-cut event
                     lists of both runs start at seq = cut *)
                  let acc = acc @ Service.drain svc in
                  Service.checkpoint svc ~dir;
                  (acc, rest)
                | j :: rest ->
                  go (acc @ Service.submit svc j) (i + 1) rest
              in
              let pre_evs, suffix = go [] 0 jobs in
              (* keep running the original past the cut *)
              let post_evs =
                let evs =
                  List.concat_map (fun j -> Service.submit svc j) suffix
                in
                evs @ Service.drain svc
              in
              let plans = Service.finalize svc in
              Service.shutdown svc;
              ignore pre_evs;
              let manifest = Filename.concat dir Checkpoint.manifest_name in
              let svc' = Service.restore ~manifest () in
              Alcotest.(check int)
                (name ^ ": restored seq") cut (Service.seq svc');
              let replay_evs = feed svc' suffix in
              let plans' = Service.finalize svc' in
              Service.shutdown svc';
              check_ev_lists
                (Printf.sprintf "%s cut=%d: suffix decisions" name cut)
                post_evs replay_evs;
              Array.iteri
                (fun i p ->
                  Alcotest.(check (float 1e-12))
                    (Printf.sprintf "%s cut=%d shard %d energy" name cut i)
                    (Schedule.energy p3 p)
                    (Schedule.energy p3 plans'.(i));
                  Alcotest.(check (list int))
                    (Printf.sprintf "%s cut=%d shard %d rejected" name cut i)
                    p.Schedule.rejected plans'.(i).Schedule.rejected)
                plans))
        [ 0; 17; 59 ])
    Online.all

(* ------------------------------------------------------------------ *)
(* Checkpoint integrity                                                 *)
(* ------------------------------------------------------------------ *)

let test_checkpoint_detects_corruption () =
  with_tmp_dir (fun dir ->
      let params _ = Online.params ~power:p3 ~machines:1 () in
      let svc = Service.create ~engine:Online.pd ~params ~shards:2 () in
      let jobs = jobs_of 20 ~machines:2 ~seed:3 in
      ignore (feed svc jobs);
      Service.checkpoint svc ~dir;
      Service.shutdown svc;
      let manifest = Filename.concat dir Checkpoint.manifest_name in
      (* sanity: it loads before we corrupt it *)
      let mf, snaps = Checkpoint.load ~manifest in
      Alcotest.(check int) "two shards" 2 mf.Checkpoint.shards;
      Alcotest.(check int) "two snapshots" 2 (Array.length snaps);
      (* flip one byte of a shard snapshot *)
      let victim = Filename.concat dir (List.hd mf.Checkpoint.files) in
      let text = read_file victim in
      let b = Bytes.of_string text in
      let i = Bytes.length b / 2 in
      Bytes.set b i (if Bytes.get b i = 'x' then 'y' else 'x');
      write_file victim (Bytes.to_string b);
      (match Checkpoint.load ~manifest with
      | _ -> Alcotest.fail "corrupt checkpoint must not load"
      | exception Failure m ->
        Alcotest.(check bool)
          "names the digest mismatch" true
          (contains m "digest mismatch" || contains m "corrupt"));
      match Service.restore ~manifest () with
      | _ -> Alcotest.fail "restore must refuse a corrupt checkpoint"
      | exception Failure _ -> ())

let test_checkpoint_prunes_superseded () =
  with_tmp_dir (fun dir ->
      let params _ = Online.params ~power:p3 ~machines:1 () in
      let svc = Service.create ~engine:Online.pd ~params ~shards:2 () in
      let jobs = jobs_of 30 ~machines:2 ~seed:7 in
      List.iteri
        (fun i j ->
          ignore (Service.submit svc j);
          if i = 9 || i = 19 then Service.checkpoint svc ~dir)
        jobs;
      ignore (Service.drain svc);
      Service.shutdown svc;
      let files = Sys.readdir dir in
      let snaps =
        Array.to_list files
        |> List.filter (fun f -> Filename.check_suffix f ".snap")
      in
      (* only the latest checkpoint's shard files survive *)
      Alcotest.(check int) "two snap files" 2 (List.length snaps);
      List.iter
        (fun f ->
          Alcotest.(check bool)
            (f ^ " belongs to the last checkpoint") true
            (String.length f >= 8 && String.sub f 0 8 = "ckpt-20-"))
        snaps)

let () =
  Alcotest.run "service"
    [
      ( "atomic-io",
        [
          Alcotest.test_case "roundtrip" `Quick test_atomic_roundtrip;
          Alcotest.test_case "partial write never observed" `Quick
            test_atomic_partial_never_observed;
        ] );
      ( "pool",
        [
          Alcotest.test_case "per-queue order" `Quick
            test_pool_per_queue_order;
          Alcotest.test_case "migration keeps order" `Quick
            test_pool_migration_keeps_order;
          Alcotest.test_case "poison and shutdown" `Quick
            test_pool_poison_and_shutdown;
        ] );
      ( "service",
        [
          Alcotest.test_case "k=1 equals Online.run" `Quick
            test_service_k1_equals_online_run;
          Alcotest.test_case "worker-count invariance" `Quick
            test_service_worker_count_invariance;
          Alcotest.test_case "migration equivalence" `Quick
            test_service_migration_equivalence;
        ] );
      ( "checkpoint",
        [
          Alcotest.test_case "cut/restore/replay, all engines" `Slow
            test_checkpoint_cut_restore_replay_all_engines;
          Alcotest.test_case "corruption detected" `Quick
            test_checkpoint_detects_corruption;
          Alcotest.test_case "prunes superseded" `Quick
            test_checkpoint_prunes_superseded;
        ] );
    ]
